"""Forward exploration of ``M_G`` and the explicit state graph.

:class:`Explorer` is the shared engine behind the decision procedures: a
breadth-first construction of the reachable fragment of ``M_G`` with

* a state budget (semi-decision procedures stop with a clear signal
  instead of running away on infinite-state schemes),
* parent pointers for witness-path reconstruction,
* an optional early-stop predicate (targeted searches), and
* full edge recording, so the result doubles as a finite LTS
  (:meth:`StateGraph.to_lts`) for the simulation machinery of
  :mod:`repro.lts`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics, Transition
from ..errors import AnalysisBudgetExceeded

#: Default exploration budget (number of distinct states).
DEFAULT_MAX_STATES = 50_000


class StateGraph:
    """The explored fragment of ``M_G`` as an explicit graph."""

    def __init__(self, scheme: RPScheme, initial: HState) -> None:
        self.scheme = scheme
        self.initial = initial
        self.index: Dict[HState, int] = {}
        self.states: List[HState] = []
        self.edges: List[List[Transition]] = []
        self.parent: Dict[HState, Optional[Transition]] = {}
        #: ``True`` when every reachable state was visited and expanded.
        self.complete = False
        #: States discovered but not expanded when the budget ran out.
        self.unexpanded: List[HState] = []

    # -- construction helpers (used by Explorer) ------------------------

    def _add_state(self, state: HState, via: Optional[Transition]) -> int:
        number = self.index.get(state)
        if number is None:
            number = len(self.states)
            self.index[state] = number
            self.states.append(state)
            self.edges.append([])
            self.parent[state] = via
        return number

    # -- queries ---------------------------------------------------------

    def __contains__(self, state: HState) -> bool:
        return state in self.index

    def __len__(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(out) for out in self.edges)

    def successors(self, state: HState) -> List[Transition]:
        """Recorded outgoing transitions of an *expanded* state."""
        return self.edges[self.index[state]]

    def path_to(self, state: HState) -> List[Transition]:
        """The BFS witness path from the initial state to *state*."""
        path: List[Transition] = []
        current = state
        while True:
            via = self.parent[current]
            if via is None:
                break
            path.append(via)
            current = via.source
        path.reverse()
        return path

    def find(self, predicate: Callable[[HState], bool]) -> Optional[HState]:
        """The first explored state satisfying *predicate* (BFS order)."""
        for state in self.states:
            if predicate(state):
                return state
        return None

    def find_all(self, predicate: Callable[[HState], bool]) -> List[HState]:
        """All explored states satisfying *predicate* (BFS order)."""
        return [state for state in self.states if predicate(state)]

    def has_cycle(self) -> bool:
        """``True`` iff the explored graph contains a directed cycle.

        Iterative three-colour DFS over recorded edges.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = [WHITE] * len(self.states)
        for start in range(len(self.states)):
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(start, 0)]
            colour[start] = GREY
            while stack:
                node, edge_pos = stack[-1]
                if edge_pos < len(self.edges[node]):
                    stack[-1] = (node, edge_pos + 1)
                    target = self.index[self.edges[node][edge_pos].target]
                    if colour[target] == GREY:
                        return True
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        stack.append((target, 0))
                else:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def find_lasso(self) -> Optional[Tuple[List[Transition], List[Transition]]]:
        """A (stem, loop) pair witnessing an infinite run, if any.

        The stem leads from the initial state to the loop entry; the loop
        is a non-empty cycle.  Returns ``None`` on acyclic graphs.

        Iterative three-colour DFS with an explicit trail: graphs as deep
        as the state budget allows (long chains, deep pipelines) are
        handled without touching the interpreter recursion limit.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {state: WHITE for state in self.states}
        trail: List[Transition] = []
        stack: List[Tuple[HState, int]] = [(self.initial, 0)]
        colour[self.initial] = GREY
        while stack:
            state, position = stack[-1]
            out = self.edges[self.index[state]]
            if position < len(out):
                stack[-1] = (state, position + 1)
                transition = out[position]
                target = transition.target
                status = colour.get(target, BLACK)
                if status == GREY:
                    path = trail + [transition]
                    # split the trail at the last occurrence of the entry
                    split = 0
                    for index, step in enumerate(path):
                        if step.source == target:
                            split = index
                    return path[:split], path[split:]
                if status == WHITE:
                    colour[target] = GREY
                    trail.append(transition)
                    stack.append((target, 0))
            else:
                colour[state] = BLACK
                stack.pop()
                if trail:
                    trail.pop()
        return None

    def terminal_states(self) -> List[HState]:
        """Expanded states with no outgoing transition (∅ only, by Prop 3)."""
        pending = set(self.unexpanded)
        return [
            state
            for state, number in self.index.items()
            if not self.edges[number] and state not in pending
        ]

    def to_lts(self):
        """View the explored fragment as a generic finite LTS."""
        from ..lts.lts import LTS

        lts = LTS(initial=self.initial)
        for state in self.states:
            lts.add_state(state)
        for out in self.edges:
            for transition in out:
                lts.add_transition(transition.source, transition.label, transition.target)
        return lts


class Explorer:
    """Breadth-first explorer for ``M_G`` with budget and early stop."""

    def __init__(
        self,
        scheme: RPScheme,
        max_states: int = DEFAULT_MAX_STATES,
        max_state_size: Optional[int] = None,
    ) -> None:
        self.scheme = scheme
        self.semantics = AbstractSemantics(scheme)
        self.max_states = max_states
        #: Optional cutoff on the *size* of expanded states: schemes whose
        #: invocation count grows multiplicatively produce states whose
        #: successor computation is quadratic in their size, so searches
        #: that only need small-state coverage can cap it.  Oversized
        #: states are recorded but not expanded, and the exploration is
        #: reported incomplete.
        self.max_state_size = max_state_size

    def explore(
        self,
        initial: Optional[HState] = None,
        stop_when: Optional[Callable[[HState], bool]] = None,
        restrict_to: Optional[Callable[[HState], bool]] = None,
    ) -> StateGraph:
        """Explore from *initial* (default σ0).

        ``stop_when`` halts the search as soon as a matching state is
        *discovered* (it is recorded in the graph, reachable via
        :meth:`StateGraph.path_to`).  ``restrict_to`` confines the search to
        states satisfying the predicate: transitions leaving the region are
        recorded, but their targets are not expanded (used by the
        inevitability procedure to explore the ``↑I``-restricted system).

        The result's ``complete`` flag is ``True`` iff every discovered
        (in-region) state was expanded before the budget ran out and no
        early stop fired.
        """
        start = initial if initial is not None else self.semantics.initial_state
        graph = StateGraph(self.scheme, start)
        graph._add_state(start, None)
        if stop_when is not None and stop_when(start):
            graph.unexpanded = [start]
            return graph
        queue: deque = deque([start])
        expanded: Set[HState] = set()
        oversized: List[HState] = []
        while queue:
            state = queue.popleft()
            if restrict_to is not None and not restrict_to(state):
                continue
            if self.max_state_size is not None and state.size > self.max_state_size:
                oversized.append(state)
                continue
            expanded.add(state)
            out = graph.edges[graph.index[state]]
            for transition in self.semantics.successors(state):
                out.append(transition)
                target = transition.target
                if target in graph.index:
                    continue
                if len(graph.states) >= self.max_states:
                    graph.unexpanded = [s for s in queue if s not in expanded]
                    return graph
                graph._add_state(target, transition)
                if stop_when is not None and stop_when(target):
                    graph.unexpanded = [s for s in queue if s not in expanded] + [target]
                    return graph
                queue.append(target)
        graph.complete = not oversized
        graph.unexpanded = oversized
        return graph

    def explore_or_raise(
        self, initial: Optional[HState] = None, what: str = "exploration"
    ) -> StateGraph:
        """Explore exhaustively; raise when the budget does not suffice."""
        graph = self.explore(initial)
        if not graph.complete:
            raise AnalysisBudgetExceeded(
                f"{what}: state budget of {self.max_states} exhausted "
                f"(the scheme may be unbounded; raise max_states or use a "
                f"procedure with an unboundedness certificate)",
                explored=len(graph),
            )
        return graph
