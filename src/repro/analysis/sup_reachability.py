"""The Sup-Reachability Problem (Theorem 5).

*Input:* a scheme ``G`` and a state ``σ ∈ M(G)``.
*Output:* a finite basis of the upward closure of ``Reach(σ)``.

Since ``⪯`` is a well-quasi-ordering (Kruskal), ``↑Reach(σ)`` has a finite
basis; the canonical one is the set of *minimal reachable states*.  The
algorithm here is a forward search with **domination pruning**: a newly
discovered state is discarded iff it embeds some already-kept state
(``kept ⪯ new``); kept states form a bad sequence, hence — by the wqo
property — the search terminates on *every* scheme, bounded or not.

Correctness rests on a property of RP schemes proved in
``DESIGN.md``/``EXPERIMENTS.md`` and property-tested in the test-suite:
*(reflexive) downward compatibility*.  If ``σ ⪯ σ'`` and ``σ' → τ'`` then
either ``σ ⪯ τ'`` already, or ``σ → τ`` for some ``τ ⪯ τ'`` — crucially
this holds **including the wait rule** (a wait fired by a token whose
embedding preimage exists forces the preimage childless too), which is the
direction in which ``wait`` does *not* break compatibility.  By induction,
anything reachable from a pruned state dominates something reachable from
the kept state that pruned it, so pruning never loses minimal elements:

    ↑Reach(σ)  =  ↑{kept states}.

The returned basis is the antichain of minimal kept states.  This single
engine also answers every *downward-closed* emptiness question about
``Reach(σ)`` (is some reachable state P-free? is some reachable state of
size ≤ k? ...) via :func:`reaches_downward_closed`, which is how
persistence (§5.2) is decided.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.embedding import EmbeddingIndex
from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics, Transition
from ..errors import AnalysisBudgetExceeded, CorruptionDetected
from ..robust.governance import governed
from ..wqo.kruskal import embedding_upward_closed, tree_embedding_order
from ..wqo.orderings import minimal_elements
from .certificates import AnalysisVerdict, BasisCertificate
from .session import AnalysisSession, resolve_session

#: Domination-pruned searches terminate by the wqo property; the budget is
#: a safety net against pathological antichain growth, far above anything
#: the scheme families in this repository produce.
DEFAULT_MAX_KEPT = 200_000


def sup_reachability(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_kept: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Compute a finite basis of ``↑Reach(initial)``.

    The verdict always ``holds`` (the problem is a computation, not a
    yes/no question); the basis is in the certificate.
    """
    kept_budget = DEFAULT_MAX_KEPT if max_kept is None else max_kept
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.tracer.span("sup-reachability", max_kept=kept_budget) as span:
            basis, kept_count = _minimal_reach(sess, kept_budget)
            span.set(kept=kept_count, basis_size=len(basis))
        return AnalysisVerdict(
            holds=True,
            method="domination-pruned-search",
            certificate=BasisCertificate(basis=tuple(basis)),
            exact=True,
            details={"kept": kept_count, "basis_size": len(basis)},
        )

    return governed(sess, budget, "sup-reachability", body)


def minimal_reachable_states(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_kept: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> List[HState]:
    """The minimal elements of ``Reach(initial)`` w.r.t. ``⪯``.

    Returns a plain list, so a ``budget=`` always *raises* on exhaustion
    (no partial-verdict conversion, even under ``on_exhaust="partial"``).
    """
    kept_budget = DEFAULT_MAX_KEPT if max_kept is None else max_kept
    sess = resolve_session(scheme, session, initial)
    return governed(
        sess,
        budget,
        "minimal-reachable-states",
        lambda: _minimal_reach(sess, kept_budget)[0],
        allow_partial=False,
    )


def reaches_downward_closed(
    scheme: RPScheme,
    predicate: Callable[[HState], bool],
    *,
    initial: Optional[HState] = None,
    max_kept: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> Optional[HState]:
    """A reachable state satisfying a *downward-closed* predicate, or None.

    The predicate must be downward-closed w.r.t. ``⪯`` (if it holds of σ
    and σ' ⪯ σ then it holds of σ'); under that contract the answer is
    exact on every scheme: ``Reach ∩ D ≠ ∅`` iff some kept state is in D.

    The returned witness is a kept (hence genuinely reachable) state.
    When the session has already computed its full kept-state set (by an
    earlier persistence/sup-reachability query) the answer is a pure scan;
    conversely, a search that completes without a witness *is* the full
    kept set and is cached on the session.

    ``None`` means a conclusive "does not reach", so a ``budget=``
    always *raises* on exhaustion (no partial-verdict conversion).
    """
    kept_budget = DEFAULT_MAX_KEPT if max_kept is None else max_kept
    sess = resolve_session(scheme, session, initial)

    def body() -> Optional[HState]:
        kept = sess.memo.get("kept-states")
        if kept is None:
            with sess.stats.timed("sup-reach-engine"):
                with sess.tracer.span(
                    "sup-reach.antichain-saturation",
                    max_kept=kept_budget,
                    restricted=True,
                ) as span:
                    kept = _kept_states(
                        sess.semantics,
                        sess.initial,
                        kept_budget,
                        stop_when=predicate,
                        index=sess.embedding_index,
                        budget=sess.budget,
                    )
                    span.set(kept=len(kept))
            witness = next((state for state in kept if predicate(state)), None)
            if witness is None:
                # the search ran to wqo termination: `kept` is the complete
                # domination-pruned set, reusable by any later query
                sess.memo["kept-states"] = kept
            return witness
        return next((state for state in kept if predicate(state)), None)

    return governed(
        sess, budget, "reaches-downward-closed", body, allow_partial=False
    )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


def _minimal_reach(sess: AnalysisSession, max_kept: int) -> Tuple[List[HState], int]:
    cached = sess.memo.get("minimal-basis")
    if cached is not None:
        return cached
    kept = sess.kept_states(max_kept)
    with sess.tracer.span("sup-reach.basis-extraction", kept=len(kept)) as span:
        ordered = sorted(kept, key=lambda s: (s.size, s.sort_key()))
        index = sess.embedding_index
        if index.accelerated:
            basis = list(embedding_upward_closed(ordered, leq=index.embeds).basis)
        else:
            # naive reference arm: no signature gating, plain antichain scan
            basis = minimal_elements(tree_embedding_order(index.embeds), ordered)
        span.set(basis_size=len(basis))
    sess.memo["minimal-basis"] = (basis, len(kept))
    return basis, len(kept)


def _kept_states(
    semantics: AbstractSemantics,
    initial: HState,
    max_kept: int,
    stop_when: Optional[Callable[[HState], bool]] = None,
    index: Optional[EmbeddingIndex] = None,
    budget: Optional[Any] = None,
) -> List[HState]:
    """Forward search keeping only non-dominated states.

    A state is *kept* unless some earlier-kept state embeds into it; all
    kept states are expanded.  Kept states are bucketed by size so a
    domination scan only generates candidates from size-compatible
    buckets (``low ⪯ state`` needs ``low.size ≤ state.size``), and the
    surviving embedding tests run through the session's
    :class:`~repro.core.embedding.EmbeddingIndex` (signature refutation +
    session-lifetime memo).

    *budget* (the session's ambient :class:`repro.robust.Budget`) is
    checked once per expansion; successor lists are validated against
    their queried source so a corrupted backend surfaces as
    :class:`~repro.errors.CorruptionDetected` rather than a wrong basis.
    """
    start = initial if initial is not None else semantics.initial_state
    if index is None:
        index = EmbeddingIndex()
    kept: List[HState] = []
    buckets: Dict[int, List[HState]] = {}
    queue: deque = deque()
    seen = set()

    def dominated(state: HState) -> bool:
        if not index.accelerated:
            # naive reference arm: unscreened scan over all kept states
            return any(index.embeds(low, state) for low in kept)
        measure = state.size
        for size in sorted(buckets):
            if size > measure:
                break
            if any(index.embeds(low, state) for low in buckets[size]):
                return True
        return False

    def offer(state: HState) -> bool:
        """Keep *state* if new and undominated; return True when stopping."""
        if state in seen:
            return False
        seen.add(state)
        if dominated(state):
            return False
        kept.append(state)
        buckets.setdefault(state.size, []).append(state)
        queue.append(state)
        if len(kept) > max_kept:
            raise AnalysisBudgetExceeded(
                f"sup-reachability: antichain budget of {max_kept} exceeded",
                explored=len(kept),
            )
        return stop_when is not None and stop_when(state)

    if offer(start):
        return kept
    while queue:
        if budget is not None:
            budget.check(kept=len(kept), frontier=len(queue))
        state = queue.popleft()
        for transition in semantics.successors(state):
            if transition.source != state:
                raise CorruptionDetected(
                    f"sup-reachability: successor computation returned a "
                    f"transition sourced at {transition.source.to_notation()} "
                    f"while expanding {state.to_notation()}"
                )
            if offer(transition.target):
                return kept
    return kept
