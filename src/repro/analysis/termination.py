"""The Halting Problem for RP schemes (Corollary 7).

*Halting*: do **all** computations starting from a given state eventually
terminate?  By Proposition 3 the only terminal state is ``∅``, so halting
means every maximal run is finite and ends in ``∅``.

The decision rests on König's lemma: ``M_G`` is finitely branching, so

* if ``Reach(σ)`` is infinite there is an infinite run — not halting;
* if ``Reach(σ)`` is finite, an infinite run exists iff the reachable
  graph has a (reachable) cycle.

Hence *halting = bounded ∧ acyclic*, and both ingredients are available:
boundedness from :mod:`repro.analysis.boundedness` (with its pump
certificates) and cycle detection on the saturated graph.  Non-halting
verdicts carry a concrete :class:`LassoCertificate` (finite case) or
:class:`PumpCertificate` (unbounded case).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..robust.governance import governed
from .boundedness import boundedness
from .certificates import AnalysisVerdict, LassoCertificate, SaturationCertificate
from .explore import DEFAULT_MAX_STATES
from .session import AnalysisSession, resolve_session


def halts(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether all computations from *initial* terminate."""
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        # the nested boundedness call runs WITHOUT its own budget: the
        # ambient budget installed here still governs it, and exhaustion
        # propagates to this wrapper — an inner partial verdict must never
        # be misread as a conclusive "unbounded"
        bounded = boundedness(scheme, max_states=state_budget, session=sess)
        if not bounded.holds:
            # an unbounded system has infinite runs by König's lemma; the
            # pump certificate exhibits ever-growing reachable states
            return AnalysisVerdict(
                holds=False,
                method="unbounded-implies-nonhalting",
                certificate=bounded.certificate,
                exact=bounded.exact,
                details=bounded.details,
            )
        with sess.phase("halts", budget=state_budget) as span:
            graph = sess.explore_or_raise(state_budget, what="halting")
            with sess.tracer.span("halts.lasso-search", states=len(graph)):
                lasso = graph.find_lasso()
            span.set(cyclic=lasso is not None)
        if lasso is not None:
            stem, loop = lasso
            return AnalysisVerdict(
                holds=False,
                method="reachable-cycle",
                certificate=LassoCertificate(stem=tuple(stem), loop=tuple(loop)),
                exact=True,
                details={"explored": len(graph)},
            )
        return AnalysisVerdict(
            holds=True,
            method="bounded-acyclic",
            certificate=SaturationCertificate(len(graph), graph.num_transitions),
            exact=True,
            details={"explored": len(graph)},
        )

    return governed(sess, budget, "halts", body)


def may_terminate(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether **some** computation from *initial* terminates.

    This is reachability of ``∅`` (the unique terminal state), a plain
    forward question answered by the reachability procedure.
    """
    from ..core.hstate import EMPTY
    from .reachability import state_reachable

    sess = resolve_session(scheme, session, initial)
    return governed(
        sess,
        budget,
        "may-terminate",
        lambda: state_reachable(
            scheme, EMPTY, max_states=max_states, session=sess
        ),
    )
