"""Persistent node sets (§5.2, a corollary of Theorem 5).

A set of nodes ``P = {q1..qn}`` is *persistent* (from a given initial
state) iff every reachable state has at least one occurrence of one node
of ``P`` — e.g. the nodes of a procedure that is never terminated, or the
nodes in which a resource is held forever.

Persistence is decided from the sup-reachability basis: "contains no
``P``-node" is a downward-closed property (deleting invocations cannot
create ``P``-nodes), so some reachable state is ``P``-free iff some
*minimal* reachable state is ``P``-free.  The minimal-reachable-state
engine of :mod:`repro.analysis.sup_reachability` terminates on every
scheme, making this procedure exact unconditionally — exactly the shape of
the paper's Proposition 14.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..robust.governance import governed
from .certificates import AnalysisVerdict, BasisCertificate
from .session import AnalysisSession, resolve_session
from .sup_reachability import DEFAULT_MAX_KEPT, reaches_downward_closed, sup_reachability


def persistent(
    scheme: RPScheme,
    nodes: Sequence[str],
    *,
    initial: Optional[HState] = None,
    max_kept: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether the node set *nodes* is persistent from *initial*.

    ``holds=True``: every reachable state contains some node of *nodes*.
    Negative verdicts carry a reachable ``P``-free witness state.

    Both phases (witness search and basis computation) run on one session,
    so the domination-pruned search happens exactly once per call — or
    once per *session* when the caller supplies one — and every embedding
    test goes through the session's shared
    :class:`~repro.core.embedding.EmbeddingIndex`.
    """
    for node in nodes:
        scheme.node(node)  # validate early
    wanted = frozenset(nodes)
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase("persistent", nodes=len(wanted)) as span:
            # nested calls run budget-less: the ambient budget installed by
            # this wrapper governs them and exhaustion propagates here
            witness = reaches_downward_closed(
                scheme,
                predicate=lambda s: not s.contains_any_node(wanted),
                max_kept=max_kept,
                session=sess,
            )
            if witness is not None:
                span.set(holds=False)
                return AnalysisVerdict(
                    holds=False,
                    method="sup-reachability-basis",
                    certificate=witness,
                    exact=True,
                    details={"free_state": witness.to_notation()},
                )
            basis = sup_reachability(scheme, max_kept=max_kept, session=sess)
            span.set(holds=True)
        return AnalysisVerdict(
            holds=True,
            method="sup-reachability-basis",
            certificate=basis.certificate,
            exact=True,
            details=basis.details,
        )

    return governed(sess, budget, "persistent", body)


def never_terminates_procedure(
    scheme: RPScheme,
    procedure: str,
    *,
    initial: Optional[HState] = None,
    max_kept: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Is some invocation of *procedure* alive in every reachable state?

    Uses the scheme's procedure metadata to collect the procedure's nodes
    (the graph region reachable from its entry without crossing other
    procedure entries) and checks persistence of that set.
    """
    entry = scheme.procedures.get(procedure)
    if entry is None:
        raise KeyError(f"unknown procedure {procedure!r}")
    other_entries = {e for p, e in scheme.procedures.items() if p != procedure}
    region = {entry}
    frontier = [entry]
    while frontier:
        node = scheme.node(frontier.pop())
        for succ in node.successors:
            if succ not in region and succ not in other_entries:
                region.add(succ)
                frontier.append(succ)
    return persistent(
        scheme,
        sorted(region),
        initial=initial,
        max_kept=max_kept,
        session=session,
        budget=budget,
    )
