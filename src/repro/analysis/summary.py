"""One-call analysis summary for a scheme.

:func:`analyze` runs the standard battery — boundedness, halting, node
reachability sweep, minimal-reachable basis, normedness — each guarded
against budget exhaustion, and returns a structured
:class:`SchemeReport` that renders to the ``rpcheck`` report text.
Programmatic consumers get the raw verdicts; the CLI gets consistent
formatting; tests get one object to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from .boundedness import boundedness
from .certificates import AnalysisVerdict
from .explore import DEFAULT_MAX_STATES
from .normedness import normed
from .reachability import node_reachable
from .session import AnalysisSession, AnalysisStats, resolve_session
from .sup_reachability import sup_reachability
from .termination import halts

#: Default cap on the normedness pass inside :func:`analyze`.  Normedness
#: multiplies exploration by per-witness searches on unbounded schemes, so
#: the battery bounds it separately (it is reported as extra information
#: and excluded from ``SchemeReport.conclusive``).  Pass
#: ``normedness_max_states=`` to raise or lower the cap per call.
DEFAULT_NORMEDNESS_MAX_STATES = 1_500


@dataclass(frozen=True)
class SchemeReport:
    """The outcome of the standard analysis battery.

    Each optional field is ``None`` when the corresponding procedure was
    inconclusive within the budget (never silently wrong).
    """

    scheme_name: str
    nodes: int
    wait_free: bool
    bounded: Optional[AnalysisVerdict]
    halting: Optional[AnalysisVerdict]
    normedness: Optional[AnalysisVerdict]
    unreachable_nodes: Tuple[str, ...]
    inconclusive_nodes: Tuple[str, ...]
    basis: Optional[Tuple[HState, ...]]
    #: The session's counters (one exploration for the whole battery).
    stats: Optional[AnalysisStats] = None

    def render(self) -> str:
        """The human-readable report."""
        lines = [
            f"scheme    : {self.scheme_name}",
            f"nodes     : {self.nodes}",
            f"wait-free : {'yes' if self.wait_free else 'no'}",
            "analyses:",
            self._verdict_line("boundedness", self.bounded),
            self._verdict_line("halting", self.halting),
            self._verdict_line("normedness", self.normedness),
        ]
        unreachable = ", ".join(self.unreachable_nodes) or "(none)"
        lines.append(f"  unreachable nodes  {unreachable}")
        if self.inconclusive_nodes:
            lines.append(
                "  inconclusive nodes " + ", ".join(self.inconclusive_nodes)
            )
        if self.basis is not None:
            rendered = ", ".join(state.to_notation() for state in self.basis)
            lines.append(f"  min-reach basis    {rendered}")
        else:
            lines.append("  min-reach basis    inconclusive")
        return "\n".join(lines)

    @staticmethod
    def _verdict_line(name: str, verdict: Optional[AnalysisVerdict]) -> str:
        if verdict is None:
            return f"  {name:<18} inconclusive (budget exhausted)"
        if getattr(verdict, "is_partial", False):
            return f"  {name:<18} {verdict.describe()}"
        answer = "yes" if verdict.holds else "no"
        exactness = "" if verdict.exact else " (replay-verified, not a proof)"
        return f"  {name:<18} {answer:<4} [{verdict.method}]{exactness}"

    @property
    def conclusive(self) -> bool:
        """The core battery produced verdicts.

        Normedness is excluded: on unbounded schemes it is frequently
        inconclusive by nature (see :mod:`repro.analysis.normedness`) and
        is reported as extra information only.
        """
        return (
            self.bounded is not None
            and self.halting is not None
            and not self.inconclusive_nodes
            and self.basis is not None
        )


def analyze(
    scheme: RPScheme,
    *,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    normedness_max_states: Optional[int] = None,
    budget: Optional[Any] = None,
) -> SchemeReport:
    """Run the standard battery with graceful budget handling.

    The whole battery runs on **one** analysis session: the reachable
    fragment of ``M_G`` is explored a single time
    (``report.stats.explorations == 1``) and every procedure reuses the
    shared graph, successor cache, and memoized verdicts.  Pass your own
    ``session=`` to share that work with further queries.

    *normedness_max_states* caps the normedness pass separately, since it
    multiplies exploration by per-witness searches on unbounded schemes
    (default :data:`DEFAULT_NORMEDNESS_MAX_STATES`, additionally clamped
    to *max_states*).

    A ``budget=`` (:class:`~repro.robust.Budget`) governs the battery
    *cumulatively*: one deadline/memory/cancellation envelope for all
    passes.  Exhaustion mid-battery never aborts the report — the pass
    that ran out (and every later pass, which trips the spent budget
    immediately) is reported inconclusive, exactly like a ``max_states``
    overrun, regardless of the budget's ``on_exhaust`` policy.
    """
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    normedness_budget = min(
        state_budget,
        DEFAULT_NORMEDNESS_MAX_STATES
        if normedness_max_states is None
        else normedness_max_states,
    )
    sess = resolve_session(scheme, session, None)

    def guarded(procedure) -> Optional[AnalysisVerdict]:
        # BudgetExhausted subclasses AnalysisBudgetExceeded, so a spent
        # Budget degrades a pass to "inconclusive" the same way a state
        # budget does — the battery itself never raises
        try:
            return procedure()
        except AnalysisBudgetExceeded:
            return None

    previous_budget = sess.budget
    if budget is not None:
        sess.budget = budget
        budget.start()
    try:
        bounded = guarded(
            lambda: boundedness(scheme, max_states=state_budget, session=sess)
        )
        halting = guarded(lambda: halts(scheme, max_states=state_budget, session=sess))
        normedness = guarded(
            lambda: normed(scheme, max_states=normedness_budget, session=sess)
        )

        unreachable: List[str] = []
        inconclusive: List[str] = []
        for node in scheme.node_ids:
            try:
                if not node_reachable(
                    scheme, node, max_states=state_budget, session=sess
                ).holds:
                    unreachable.append(node)
            except AnalysisBudgetExceeded:
                inconclusive.append(node)

        try:
            basis: Optional[Tuple[HState, ...]] = tuple(
                sup_reachability(scheme, session=sess).certificate.basis
            )
        except AnalysisBudgetExceeded:
            basis = None
    finally:
        if budget is not None:
            sess.budget = previous_budget
            budget.export(sess.metrics)

    return SchemeReport(
        scheme_name=scheme.name,
        nodes=len(scheme),
        wait_free=scheme.is_wait_free,
        bounded=bounded,
        halting=halting,
        normedness=normedness,
        unreachable_nodes=tuple(unreachable),
        inconclusive_nodes=tuple(inconclusive),
        basis=basis,
        stats=sess.stats,
    )
