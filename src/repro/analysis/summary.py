"""One-call analysis summary for a scheme.

:func:`analyze` runs the standard battery — boundedness, halting, node
reachability sweep, minimal-reachable basis, normedness — each guarded
against budget exhaustion, and returns a structured
:class:`SchemeReport` that renders to the ``rpcheck`` report text.
Programmatic consumers get the raw verdicts; the CLI gets consistent
formatting; tests get one object to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from .boundedness import boundedness
from .certificates import AnalysisVerdict
from .explore import DEFAULT_MAX_STATES
from .normedness import normed
from .reachability import node_reachable
from .sup_reachability import sup_reachability
from .termination import halts


@dataclass(frozen=True)
class SchemeReport:
    """The outcome of the standard analysis battery.

    Each optional field is ``None`` when the corresponding procedure was
    inconclusive within the budget (never silently wrong).
    """

    scheme_name: str
    nodes: int
    wait_free: bool
    bounded: Optional[AnalysisVerdict]
    halting: Optional[AnalysisVerdict]
    normedness: Optional[AnalysisVerdict]
    unreachable_nodes: Tuple[str, ...]
    inconclusive_nodes: Tuple[str, ...]
    basis: Optional[Tuple[HState, ...]]

    def render(self) -> str:
        """The human-readable report."""
        lines = [
            f"scheme    : {self.scheme_name}",
            f"nodes     : {self.nodes}",
            f"wait-free : {'yes' if self.wait_free else 'no'}",
            "analyses:",
            self._verdict_line("boundedness", self.bounded),
            self._verdict_line("halting", self.halting),
            self._verdict_line("normedness", self.normedness),
        ]
        unreachable = ", ".join(self.unreachable_nodes) or "(none)"
        lines.append(f"  unreachable nodes  {unreachable}")
        if self.inconclusive_nodes:
            lines.append(
                "  inconclusive nodes " + ", ".join(self.inconclusive_nodes)
            )
        if self.basis is not None:
            rendered = ", ".join(state.to_notation() for state in self.basis)
            lines.append(f"  min-reach basis    {rendered}")
        else:
            lines.append("  min-reach basis    inconclusive")
        return "\n".join(lines)

    @staticmethod
    def _verdict_line(name: str, verdict: Optional[AnalysisVerdict]) -> str:
        if verdict is None:
            return f"  {name:<18} inconclusive (budget exhausted)"
        answer = "yes" if verdict.holds else "no"
        exactness = "" if verdict.exact else " (replay-verified, not a proof)"
        return f"  {name:<18} {answer:<4} [{verdict.method}]{exactness}"

    @property
    def conclusive(self) -> bool:
        """The core battery produced verdicts.

        Normedness is excluded: on unbounded schemes it is frequently
        inconclusive by nature (see :mod:`repro.analysis.normedness`) and
        is reported as extra information only.
        """
        return (
            self.bounded is not None
            and self.halting is not None
            and not self.inconclusive_nodes
            and self.basis is not None
        )


def analyze(
    scheme: RPScheme,
    max_states: int = DEFAULT_MAX_STATES,
) -> SchemeReport:
    """Run the standard battery with graceful budget handling."""

    def guarded(procedure) -> Optional[AnalysisVerdict]:
        try:
            return procedure()
        except AnalysisBudgetExceeded:
            return None

    bounded = guarded(lambda: boundedness(scheme, max_states=max_states))
    halting = guarded(lambda: halts(scheme, max_states=max_states))
    # normedness multiplies exploration by per-witness searches on
    # unbounded schemes; the battery caps its budget (it is reported as
    # extra information and excluded from `conclusive`)
    normedness = guarded(
        lambda: normed(scheme, max_states=min(max_states, 1_500))
    )

    unreachable: List[str] = []
    inconclusive: List[str] = []
    for node in scheme.node_ids:
        try:
            if not node_reachable(scheme, node, max_states=max_states).holds:
                unreachable.append(node)
        except AnalysisBudgetExceeded:
            inconclusive.append(node)

    try:
        basis: Optional[Tuple[HState, ...]] = tuple(
            sup_reachability(scheme).certificate.basis
        )
    except AnalysisBudgetExceeded:
        basis = None

    return SchemeReport(
        scheme_name=scheme.name,
        nodes=len(scheme),
        wait_free=scheme.is_wait_free,
        bounded=bounded,
        halting=halting,
        normedness=normedness,
        unreachable_nodes=tuple(unreachable),
        inconclusive_nodes=tuple(inconclusive),
        basis=basis,
    )
