"""CTL model checking over bounded RP schemes.

The paper's opening frames the field: "systems are commonly modeled by
various types of transition systems [and] most problems of system
analysis reduce to various kinds of reachability problems on these
models" [BCM+92].  For *bounded* schemes the reachable fragment of
``M_G`` is an explicit finite Kripke structure, so full CTL is decidable
by the classical fixpoint labelling algorithm — this module implements
it, with atomic propositions over hierarchical states.

Atoms are predicates on states; ready-made ones cover the questions of
Section 3/5, and the test-suite cross-checks:

* ``EF node(q)``          ⟷  node reachability,
* ``AG ¬(node(q)∧node(r))`` ⟷  mutual exclusion,
* ``AF empty``            ⟷  halting,
* ``AG EF empty``         ⟷  normedness.

Syntax (Python combinators)::

    f = AG(Implies(node("q4"), AF(atom("terminated", HState.is_empty))))

Checking is exact and raises
:class:`~repro.errors.AnalysisBudgetExceeded` on unbounded schemes (the
finite-state hypothesis of the algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..robust.governance import governed
from .certificates import AnalysisVerdict
from .explore import DEFAULT_MAX_STATES, StateGraph
from .session import AnalysisSession, resolve_session

# ----------------------------------------------------------------------
# Formulae
# ----------------------------------------------------------------------


class Formula:
    """Base class of CTL formulae (immutable)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition: a named predicate over states."""

    name: str
    predicate: Callable[[HState], bool]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TrueF(Formula):
    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True)
class EX(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"EX {self.operand!r}"


@dataclass(frozen=True)
class EF(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"EF {self.operand!r}"


@dataclass(frozen=True)
class EG(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"EG {self.operand!r}"


@dataclass(frozen=True)
class EU(Formula):
    """``E[left U right]``."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"E[{self.left!r} U {self.right!r}]"


def AX(operand: Formula) -> Formula:
    """``AX f ≡ ¬EX ¬f``."""
    return Not(EX(Not(operand)))


def AF(operand: Formula) -> Formula:
    """``AF f ≡ ¬EG ¬f``."""
    return Not(EG(Not(operand)))


def AG(operand: Formula) -> Formula:
    """``AG f ≡ ¬EF ¬f``."""
    return Not(EF(Not(operand)))


# -- atoms --------------------------------------------------------------


def atom(name: str, predicate: Callable[[HState], bool]) -> Atom:
    """An arbitrary named atomic proposition."""
    return Atom(name, predicate)


def node(node_id: str) -> Atom:
    """"some invocation is at *node_id*"."""
    return Atom(f"node({node_id})", lambda s: s.contains_node(node_id))


def terminated() -> Atom:
    """"the state is ∅"."""
    return Atom("terminated", lambda s: s.is_empty())


def width_at_least(count: int) -> Atom:
    """"at least *count* invocations are live"."""
    return Atom(f"width≥{count}", lambda s: s.size >= count)


# ----------------------------------------------------------------------
# Checker
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CTLResult(AnalysisVerdict):
    """Outcome of a check: initial-state verdict + full labelling.

    An :class:`~repro.analysis.certificates.AnalysisVerdict` (so the CTL
    entry point fits the uniform analysis API) extended with the formula,
    the full satisfying-state labelling, and the model size.
    """

    formula: Optional[Formula] = None
    satisfying: FrozenSet[HState] = frozenset()
    states: int = 0


class CTLChecker:
    """Fixpoint labelling over a saturated state graph."""

    def __init__(self, graph: StateGraph) -> None:
        if not graph.complete:
            raise ValueError("CTL checking requires a saturated state graph")
        self.graph = graph
        self._predecessors: Dict[HState, List[HState]] = {}
        for state in graph.states:
            for transition in graph.successors(state):
                self._predecessors.setdefault(transition.target, []).append(state)
        self._cache: Dict[Formula, FrozenSet[HState]] = {}

    def satisfying(self, formula: Formula) -> FrozenSet[HState]:
        """The set of states satisfying *formula*."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = frozenset(self._evaluate(formula))
        self._cache[formula] = result
        return result

    def holds(self, formula: Formula) -> bool:
        """Does the initial state satisfy *formula*?"""
        return self.graph.initial in self.satisfying(formula)

    # -- evaluation ---------------------------------------------------

    def _evaluate(self, formula: Formula) -> Set[HState]:
        states = self.graph.states
        if isinstance(formula, TrueF):
            return set(states)
        if isinstance(formula, Atom):
            return {s for s in states if formula.predicate(s)}
        if isinstance(formula, Not):
            return set(states) - self.satisfying(formula.operand)
        if isinstance(formula, And):
            return set(self.satisfying(formula.left)) & self.satisfying(formula.right)
        if isinstance(formula, Or):
            return set(self.satisfying(formula.left)) | self.satisfying(formula.right)
        if isinstance(formula, Implies):
            return (set(states) - self.satisfying(formula.left)) | self.satisfying(
                formula.right
            )
        if isinstance(formula, EX):
            good = self.satisfying(formula.operand)
            return {
                s
                for s in states
                if any(t.target in good for t in self.graph.successors(s))
            }
        if isinstance(formula, EF):
            return self._backward_closure(self.satisfying(formula.operand))
        if isinstance(formula, EU):
            holding = self.satisfying(formula.left)
            return self._backward_closure(
                self.satisfying(formula.right), through=holding
            )
        if isinstance(formula, EG):
            return self._greatest_eg(self.satisfying(formula.operand))
        raise TypeError(f"unknown formula {formula!r}")

    def _backward_closure(
        self, seeds: FrozenSet[HState], through: Optional[FrozenSet[HState]] = None
    ) -> Set[HState]:
        result = set(seeds)
        frontier = list(seeds)
        while frontier:
            state = frontier.pop()
            for predecessor in self._predecessors.get(state, ()):
                if predecessor in result:
                    continue
                if through is not None and predecessor not in through:
                    continue
                result.add(predecessor)
                frontier.append(predecessor)
        return result

    def _greatest_eg(self, good: FrozenSet[HState]) -> Set[HState]:
        # EG f: greatest fixpoint — prune states without a good successor.
        # Deadlocked states (∅ only, by Prop 3) have no infinite path; on
        # finite maximal paths the standard convention keeps EG true at a
        # terminal state satisfying f (the maximal path stays in f).
        current = set(good)
        changed = True
        while changed:
            changed = False
            for state in list(current):
                successors = self.graph.successors(state)
                if not successors:
                    continue  # terminal maximal run, stays in f
                if not any(t.target in current for t in successors):
                    current.discard(state)
                    changed = True
        return current


def check_ctl(
    scheme: RPScheme,
    formula: Formula,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> CTLResult:
    """Model-check *formula* on the reachable fragment of ``M_G``.

    Raises :class:`~repro.errors.AnalysisBudgetExceeded` when the scheme
    does not saturate within the budget.  With a ``session=``, the
    saturated graph, its predecessor index, and every sub-formula
    labelling are shared between checks (the checker caches by formula).
    A ``budget=`` governs the exploration phase; the fixpoint labelling
    itself runs on the already-saturated finite graph.
    """
    sess = resolve_session(scheme, session, initial)

    def body() -> CTLResult:
        with sess.phase("check-ctl", formula=str(formula)):
            graph = sess.explore_or_raise(max_states, what="CTL model checking")
            checker = sess.memo.get("ctl-checker")
            if checker is None:
                # safe to cache for the session's life: the checker demands a
                # saturated graph, and a saturated graph never grows again
                checker = CTLChecker(graph)
                sess.memo["ctl-checker"] = checker
            satisfying = checker.satisfying(formula)
        return CTLResult(
            holds=graph.initial in satisfying,
            method="ctl-labelling",
            details={"explored": len(graph)},
            formula=formula,
            satisfying=satisfying,
            states=len(graph),
        )

    return governed(sess, budget, f"check-ctl({formula!r})", body)
