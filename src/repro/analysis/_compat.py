"""Back-compatibility shims for the keyword-only analysis API.

The analysis entry points were unified on a consistent keyword-only
signature (``*, initial=..., max_states=..., session=...``).  Historic
call sites passed those arguments positionally; :func:`legacy_positionals`
keeps every such call working while emitting a :class:`DeprecationWarning`
pointing at the keyword spelling.
"""

from __future__ import annotations

import warnings
from typing import Sequence, Tuple


def legacy_positionals(
    func_name: str,
    legacy: Tuple,
    names: Sequence[str],
    values: Tuple,
) -> Tuple:
    """Merge deprecated positional arguments into their keyword slots.

    *legacy* holds the extra positional arguments a caller supplied,
    *names* the keyword slots they historically mapped to (in order), and
    *values* the current keyword values (``None`` meaning "not given").
    Returns *values* with the positionals merged in.  Raises
    :class:`TypeError` on surplus positionals or a positional/keyword
    conflict, mirroring normal Python calling conventions.
    """
    if not legacy:
        return values
    if len(legacy) > len(names):
        raise TypeError(
            f"{func_name}() takes at most {len(names)} deprecated positional "
            f"argument(s) ({', '.join(names)}); got {len(legacy)}"
        )
    warnings.warn(
        f"{func_name}(): passing {', '.join(names[: len(legacy)])} positionally "
        f"is deprecated; use keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    merged = list(values)
    for index, value in enumerate(legacy):
        if merged[index] is not None and value is not None:
            raise TypeError(
                f"{func_name}() got multiple values for argument {names[index]!r}"
            )
        if value is not None:
            merged[index] = value
    return tuple(merged)
