"""Normedness of RP schemes.

A state is *normed* when it can reach the terminated state ``∅``; a scheme
is normed when every reachable state is.  The paper singles normedness out
as a property **not** compatible with ``⊑_d`` (end of Section 4): it is
"mostly interesting if one wants to analyze the uninterpreted model,
without aiming at transferring the information to the interpreted model".
The incompatibility itself is demonstrated in the test-suite on explicit
LTSs.

Decision structure:

* ``∅``-reachability from a single state is plain reachability
  (semi-decision, exact under saturation);
* scheme normedness is decided exactly on bounded schemes by a backward
  sweep over the saturated graph (the co-reachable set of ``∅``);
* on unbounded schemes a *non-normed witness* search is available: a
  reachable state from which the (bounded) exploration saturates without
  meeting ``∅`` is a proof of non-normedness.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from ..core.hstate import EMPTY, HState
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded, BudgetExhausted, CorruptionDetected
from ..robust.governance import governed
from .certificates import AnalysisVerdict, SaturationCertificate, WitnessPath
from .explore import DEFAULT_MAX_STATES
from .session import AnalysisSession, resolve_session


def state_is_normed(
    scheme: RPScheme,
    state: HState,
    *,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Can *state* reach ``∅``?

    Positive answers come from a size-greedy best-first search (states
    shrink towards ∅, so expanding the smallest frontier state first finds
    terminating runs in near-linear time where breadth-first search would
    drown); negative answers are exact when the search saturates.

    The search order is not breadth-first, so it runs beside the session's
    shared graph rather than on it — but it still goes through the
    session's memoizing semantics, sharing the successor cache.
    """
    from heapq import heappop, heappush

    from ..core.semantics import AbstractSemantics

    state_budget = DEFAULT_MAX_STATES if max_states is None else max_states
    semantics = session.semantics if session is not None else AbstractSemantics(scheme)

    def body() -> AnalysisVerdict:
        ambient = session.budget if session is not None else None
        seen = {state}
        counter = 0  # tie-breaker: heap entries must never compare HStates
        frontier = [(state.size, 0, state)]
        while frontier:
            if ambient is not None:
                ambient.check(states=len(seen), frontier=len(frontier))
            _size, _tick, current = heappop(frontier)
            if current.is_empty():
                return AnalysisVerdict(
                    holds=True,
                    method="greedy-termination-search",
                    certificate=None,
                    exact=True,
                    details={"explored": len(seen)},
                )
            for transition in semantics.successors(current):
                if transition.source != current:
                    raise CorruptionDetected(
                        f"state_is_normed: successor computation returned a "
                        f"transition sourced at "
                        f"{transition.source.to_notation()} while expanding "
                        f"{current.to_notation()}"
                    )
                target = transition.target
                if target in seen:
                    continue
                if len(seen) >= state_budget:
                    raise AnalysisBudgetExceeded(
                        f"state_is_normed: {state_budget} states searched "
                        f"without reaching ∅ or saturating",
                        explored=len(seen),
                    )
                seen.add(target)
                counter += 1
                heappush(frontier, (target.size, counter, target))
        return AnalysisVerdict(
            holds=False,
            method="greedy-termination-search",
            certificate=SaturationCertificate(len(seen), 0),
            exact=True,
            details={"explored": len(seen)},
        )

    if session is None:
        if budget is not None:
            raise ValueError("state_is_normed: budget= requires a session=")
        return body()
    return governed(session, budget, "state-is-normed", body)


def normed(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    max_witness_checks: Optional[int] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Is every reachable state normed?

    Exact on bounded schemes (backward sweep from ``∅`` over the saturated
    graph); on unbounded schemes the procedure tests up to
    *max_witness_checks* explored states for non-normedness (each test is
    itself a reachability search) and raises
    :class:`~repro.errors.AnalysisBudgetExceeded` when neither a witness
    nor saturation materialises.
    """
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    max_witness_checks = 10 if max_witness_checks is None else max_witness_checks
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase("normed", budget=state_budget):
            graph = sess.explore(state_budget)
        if graph.complete:
            conormed = _co_reachable(graph)
            for state in graph.states:
                if state not in conormed:
                    return AnalysisVerdict(
                        holds=False,
                        method="backward-sweep",
                        certificate=WitnessPath(tuple(graph.path_to(state))),
                        exact=True,
                        details={"explored": len(graph)},
                    )
            return AnalysisVerdict(
                holds=True,
                method="backward-sweep",
                certificate=SaturationCertificate(len(graph), graph.num_transitions),
                exact=True,
                details={"explored": len(graph)},
            )
        # unbounded fragment: look for an expanded state provably not normed,
        # preferring the largest explored states (blocked waits accumulate
        # there) and capping the number of expensive per-state searches
        pending = set(graph.unexpanded)
        candidates = sorted(
            (s for s in graph.states if s not in pending),
            key=lambda s: -s.size,
        )[:max_witness_checks]
        for state in candidates:
            try:
                verdict = state_is_normed(
                    scheme, state, max_states=state_budget, session=sess
                )
            except BudgetExhausted:
                # the ambient deadline/memory/cancel budget ran out — that
                # is not "this witness was inconclusive", stop the sweep
                raise
            except AnalysisBudgetExceeded:
                continue
            if not verdict.holds:
                return AnalysisVerdict(
                    holds=False,
                    method="non-normed-witness",
                    certificate=WitnessPath(tuple(graph.path_to(state))),
                    exact=True,
                    details={"witness": state.to_notation()},
                )
        raise AnalysisBudgetExceeded(
            f"normedness: no saturation and no non-normed witness within "
            f"{state_budget} states",
            explored=len(graph),
        )

    return governed(sess, budget, "normed", body)


def _co_reachable(graph) -> Set[HState]:
    """States of a saturated graph from which ``∅`` is reachable."""
    predecessors = {}
    for state in graph.states:
        for transition in graph.successors(state):
            predecessors.setdefault(transition.target, []).append(state)
    if EMPTY not in graph.index:
        return set()
    conormed = {EMPTY}
    frontier: List[HState] = [EMPTY]
    while frontier:
        state = frontier.pop()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in conormed:
                conormed.add(predecessor)
                frontier.append(predecessor)
    return conormed
