"""Backward coverability over the embedding wqo.

*Coverability*: given a scheme ``G``, an initial state ``σ0`` and a finite
set ``T`` of target states, can some state in the upward closure ``↑T``
(w.r.t. ``⪯``) be reached from ``σ0``?  Node reachability and mutual
exclusion (Theorem 4) are coverability questions: "node ``q`` occurs in
some reachable state" is exactly covering ``{(q,∅)}``, and "``q`` and
``q'`` occur simultaneously" is covering one of the three arrangements of
``{q, q'}`` into a forest.

The algorithm is the classic well-structured-transition-system backward
saturation: starting from the basis ``T``, repeatedly add a finite basis of
``Pred(↑b)`` for each basis element ``b`` until the upward-closed set stops
growing (termination by the wqo property), then test ``σ0 ∈ ↑basis``.

Exactness envelope (proved in the module's completeness analysis,
cross-validated by the test-suite against exhaustive exploration):

* the per-step predecessor bases are complete for **all** schemes, so the
  final set always *contains* ``pre*(↑T)`` — a **negative** answer
  (``σ0 ∉ ↑basis``) is therefore a proof for every scheme;
* a **positive** answer is a proof for wait-free schemes (where ``⪯`` is
  strongly compatible, making ``pre*(↑T)`` upward-closed); with ``wait``
  nodes extra invocations can block a wait on the replayed path, so a
  positive backward answer alone is reported with ``exact=False``.  The
  procedures in :mod:`repro.analysis.reachability` pair it with a forward
  witness search, which restores exact positives in practice.

Predecessor bases.  For a basis element ``b`` and each scheme node ``q``:

``action/test q → q'``
    relabel any ``q'``-vertex of ``b`` to ``q``; or insert a fresh
    ``q``-vertex anywhere (the moved token was not needed by ``b``).
``call q → q'`` spawning ``q''``
    relabel a ``q'``-vertex to ``q`` (optionally deleting one childless
    ``q''``-child of it — the spawned invocation); or replace a childless
    ``q''``-vertex by a fresh ``q``-vertex adopting any sub-multiset of its
    sibling subtrees; or insert a fresh ``q``-vertex anywhere.
``wait q → q'``
    relabel a **childless** ``q'``-vertex to ``q``; or insert a fresh
    ``q``-**leaf** anywhere (a wait-token must be childless to fire).
``end q``
    insert a fresh ``q``-vertex anywhere, adopting any sub-multiset of the
    subtrees at the insertion position (the dying invocation's released
    children).

"Insert anywhere" means: at the root forest or below any vertex, adopting
any sub-multiset of the subtrees present at that position as children.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.embedding import EmbeddingIndex
from ..core.hstate import EMPTY, HState
from ..core.scheme import NodeKind, RPScheme
from ..errors import AnalysisError
from ..wqo.basis import UpwardClosedSet
from ..wqo.kruskal import embedding_upward_closed, tree_embedding_order
from .certificates import AnalysisVerdict

#: Widths above this make sub-multiset enumeration explode; the guard turns
#: a silent blow-up into a clear error.
MAX_FOREST_WIDTH = 14


def backward_coverability(
    scheme: RPScheme,
    targets: Sequence[HState],
    *,
    initial: Optional[HState] = None,
    session=None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether ``↑targets`` is coverable from *initial*.

    ``holds`` answers "coverable".  Negative verdicts are exact on every
    scheme; positive verdicts are exact on wait-free schemes only (see the
    module docstring).

    The backward saturation itself runs over the wqo basis, not the state
    graph, so a supplied ``session=`` contributes its initial state,
    query-timing instrumentation, and its :class:`EmbeddingIndex` (the
    saturation's membership/minimality tests share the session memo).
    A ``budget=`` requires a session (the governance layer lives on it)
    and is checked once per basis element processed by the saturation.
    """
    from ..robust.governance import governed

    if session is not None:
        if initial is None:
            initial = session.initial
        start = initial

        def body() -> AnalysisVerdict:
            with session.phase(
                "backward-coverability", targets=len(targets)
            ) as span:
                verdict = _backward_coverability(
                    scheme,
                    targets,
                    start,
                    session.embedding_index,
                    session.tracer,
                    ambient=session.budget,
                )
                span.set(holds=verdict.holds, **verdict.details)
                return verdict

        return governed(session, budget, "backward-coverability", body)
    if budget is not None:
        raise ValueError("backward_coverability: budget= requires a session=")
    return _backward_coverability(scheme, targets, initial, None, None)


def _backward_coverability(
    scheme: RPScheme,
    targets: Sequence[HState],
    initial: Optional[HState],
    index: Optional[EmbeddingIndex],
    tracer=None,
    ambient: Optional[Any] = None,
) -> AnalysisVerdict:
    start = initial if initial is not None else scheme.initial_state()
    if index is None:
        index = EmbeddingIndex()
    if tracer is None:
        from ..obs import Tracer

        tracer = Tracer()
    if index.accelerated:
        reached = embedding_upward_closed(targets, leq=index.embeds)
    else:
        # naive reference arm: unindexed basis, per-query embedder
        reached = UpwardClosedSet(tree_embedding_order(index.embeds), targets)
    frontier: List[HState] = list(reached.basis)
    iterations = 0
    with tracer.span("coverability.saturation", targets=len(targets)) as span:
        while frontier:
            iterations += 1
            fresh: List[HState] = []
            for basis_element in frontier:
                if ambient is not None:
                    ambient.check(
                        basis_size=len(reached),
                        frontier=len(frontier),
                        iterations=iterations,
                    )
                for predecessor in predecessor_basis(scheme, basis_element):
                    if reached.add(predecessor):
                        fresh.append(predecessor)
            frontier = fresh
        span.set(iterations=iterations, basis_size=len(reached))
    covered = start in reached
    return AnalysisVerdict(
        holds=covered,
        method="backward-coverability",
        certificate=tuple(reached.basis),
        exact=(not covered) or scheme.is_wait_free,
        details={"iterations": iterations, "basis_size": len(reached)},
    )


def predecessor_basis(scheme: RPScheme, target: HState) -> List[HState]:
    """A finite basis of ``Pred(↑target)`` (complete for every scheme)."""
    preds: Set[HState] = set()
    for node in scheme:
        if node.kind in (NodeKind.ACTION, NodeKind.TEST):
            for successor in node.successors:
                preds.update(_relabelings(target, successor, node.id))
            preds.update(_insertions(target, node.id))
        elif node.kind is NodeKind.PCALL:
            successor = node.successors[0]
            preds.update(_call_relabelings(target, successor, node.id, node.invoked))
            preds.update(_spawn_replacements(target, node.id, node.invoked))
            preds.update(_insertions(target, node.id))
        elif node.kind is NodeKind.WAIT:
            successor = node.successors[0]
            preds.update(_relabelings(target, successor, node.id, childless_only=True))
            preds.update(_insertions(target, node.id, leaf_only=True))
        elif node.kind is NodeKind.END:
            preds.update(_insertions(target, node.id))
    return sorted(preds, key=lambda s: (s.size, s.sort_key()))


# ----------------------------------------------------------------------
# Forest surgery
# ----------------------------------------------------------------------


def _relabelings(
    state: HState, old: str, new: str, childless_only: bool = False
) -> Iterator[HState]:
    """States obtained by relabelling one ``old``-vertex to ``new``."""
    for path, node, children in state.positions():
        if node != old:
            continue
        if childless_only and not children.is_empty():
            continue
        yield state.replace(path, ((new, children),))


def _call_relabelings(
    state: HState, successor: str, mover: str, spawned: str
) -> Iterator[HState]:
    """Call-rule preds with the moved token matched in the target."""
    for path, node, children in state.positions():
        if node != successor:
            continue
        yield state.replace(path, ((mover, children),))
        if children.count(spawned, EMPTY):
            reduced = children - HState.leaf(spawned)
            yield state.replace(path, ((mover, reduced),))


def _spawn_replacements(state: HState, mover: str, spawned: str) -> Iterator[HState]:
    """Call-rule preds where only the spawned child is matched.

    A childless ``spawned``-vertex of the target is replaced by a fresh
    ``mover``-vertex adopting any sub-multiset of its sibling subtrees.
    The recursion works forest-by-forest so sibling indices stay valid.
    """
    items = state.items
    for index, (node, children) in enumerate(items):
        if node == spawned and children.is_empty():
            siblings = items[:index] + items[index + 1 :]
            if len(siblings) > MAX_FOREST_WIDTH:
                raise AnalysisError(
                    f"backward coverability: forest width {len(siblings)} "
                    f"exceeds the enumeration guard ({MAX_FOREST_WIDTH})"
                )
            for adopted, rest in _sub_multisets(siblings):
                yield HState(rest + ((mover, HState(adopted)),))
        for new_child in _spawn_replacements(children, mover, spawned):
            rebuilt = list(items)
            rebuilt[index] = (node, new_child)
            yield HState(rebuilt)


def _insertions(state: HState, node: str, leaf_only: bool = False) -> Iterator[HState]:
    """States with a fresh ``node``-vertex inserted anywhere.

    The new vertex may adopt any sub-multiset of the subtrees at its
    insertion position (none, when *leaf_only*).
    """
    yield from _adopt_at(state, (), node, leaf_only=leaf_only)
    for path, _vertex, _children in state.positions():
        yield from _adopt_at(state, path, node, leaf_only=leaf_only)


def _adopt_at(
    state: HState, forest_path: Tuple[int, ...], node: str, leaf_only: bool = False
) -> Iterator[HState]:
    """Insert ``node`` into the forest addressed by *forest_path*.

    ``forest_path = ()`` addresses the root forest; otherwise the children
    forest of the vertex at that path.  The inserted vertex adopts each
    sub-multiset of the forest's subtrees in turn.
    """
    if forest_path:
        parent_node, forest = state.subtree(forest_path)
    else:
        forest = state
    if len(forest.items) > MAX_FOREST_WIDTH:
        raise AnalysisError(
            f"backward coverability: forest width {len(forest.items)} exceeds "
            f"the enumeration guard ({MAX_FOREST_WIDTH})"
        )
    for adopted, rest in _sub_multisets(forest.items, leaf_only=leaf_only):
        new_forest = HState(rest + ((node, HState(adopted)),))
        if forest_path:
            yield state.replace(forest_path, ((parent_node, new_forest),))
        else:
            yield new_forest


def _sub_multisets(
    items: Tuple, leaf_only: bool = False
) -> Iterator[Tuple[Tuple, Tuple]]:
    """Distinct (sub-multiset, complement) splits of an item tuple."""
    if leaf_only:
        yield (), items
        return
    seen: Set[Tuple] = set()
    n = len(items)
    for mask in range(1 << n):
        adopted = tuple(items[i] for i in range(n) if mask & (1 << i))
        key = tuple(sorted((node, child.sort_key()) for node, child in adopted))
        if key in seen:
            continue
        seen.add(key)
        rest = tuple(items[i] for i in range(n) if not mask & (1 << i))
        yield adopted, rest


# ----------------------------------------------------------------------
# Arrangements (mutual-exclusion targets)
# ----------------------------------------------------------------------


def arrangements(nodes: Sequence[str]) -> List[HState]:
    """All forests whose vertex multiset is exactly *nodes*.

    A state contains all of *nodes* simultaneously iff it is above one of
    these arrangements, so they form the coverability basis for
    "do these nodes co-occur?" questions.
    """
    results: Set[HState] = set()
    _arrange(tuple(sorted(nodes)), results)
    return sorted(results, key=lambda s: s.sort_key())


def _arrange(nodes: Tuple[str, ...], results: Set[HState]) -> None:
    for forest in _forests_over(nodes):
        results.add(forest)


def _forests_over(nodes: Tuple[str, ...]) -> Iterator[HState]:
    """All unordered forests whose vertex multiset is exactly *nodes*.

    The first node acts as pivot: choose the vertex set of the tree
    containing it (avoiding double counting), build all trees over that
    set, and recurse on the remainder.
    """
    if not nodes:
        yield EMPTY
        return
    pivot, rest = nodes[0], nodes[1:]
    for mask in range(1 << len(rest)):
        inside = tuple(rest[i] for i in range(len(rest)) if mask & (1 << i))
        outside = tuple(rest[i] for i in range(len(rest)) if not mask & (1 << i))
        for tree in _trees_over((pivot,) + inside):
            for sibling_forest in _forests_over(outside):
                yield tree + sibling_forest


def _trees_over(nodes: Tuple[str, ...]) -> Iterator[HState]:
    """All single trees whose vertex multiset is exactly *nodes*."""
    seen_roots: Set[str] = set()
    for index, root in enumerate(nodes):
        if root in seen_roots:
            continue
        seen_roots.add(root)
        others = nodes[:index] + nodes[index + 1 :]
        for children in _forests_over(others):
            yield HState(((root, children),))
