"""Shared analysis sessions: explore ``M_G`` once, answer many queries.

Every decision procedure of Section 3 is a search over the same reachable
fragment of ``M_G``.  Historically each entry point built its own
:class:`~repro.analysis.explore.Explorer` and re-ran the full BFS from
``σ0``; an :class:`AnalysisSession` instead owns **one** incrementally
growable :class:`~repro.analysis.explore.StateGraph` that all procedures
share:

* a search that paused at budget ``N`` *resumes* from its frontier when a
  later query asks for more — it never restarts;
* successor computation is memoized per state and all states are
  hash-consed (:class:`~repro.core.semantics.MemoizingSemantics`), so
  repeated queries mostly hit caches;
* an :class:`AnalysisStats` object counts everything (states expanded,
  transitions fired, cache hits, peak frontier, per-query wall time) and
  optional progress listeners observe long explorations as they run.

Usage::

    session = AnalysisSession(scheme)
    node_reachable(scheme, "q5", session=session)   # explores
    boundedness(scheme, session=session)            # reuses the graph
    check_ctl(scheme, AF(terminated()), session=session)  # reuses again
    session.stats.explorations                      # == 1

The module-level procedures keep working without a session — they create
a throwaway one per call — so the session is an opt-in optimisation, not
a breaking change.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.embedding import EmbeddingIndex
from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import MemoizingSemantics
from ..errors import (
    AnalysisBudgetExceeded,
    AnalysisError,
    BudgetExhausted,
    CorruptionDetected,
    RPError,
)
from ..obs import MetricsRegistry, Tracer
from ..obs.recorder import ambient_recorder, record_incident
from .explore import DEFAULT_MAX_STATES, StateGraph


@dataclass
class AnalysisStats:
    """Counters and timings for one :class:`AnalysisSession`.

    Invariants (asserted in the test-suite): ``states_expanded`` ≤
    ``states_discovered``; all counters are monotone; ``explorations``
    counts *from-scratch* exploration passes — a session resumes its BFS
    instead of re-exploring, so it stays at 1 however many queries run.
    """

    #: Distinct states discovered (== the shared graph's size).
    states_discovered: int = 0
    #: States whose successors were expanded into the shared graph.
    states_expanded: int = 0
    #: Transitions recorded in the shared graph.
    transitions_fired: int = 0
    #: From-scratch exploration passes of ``M_G`` (1 for a used session).
    explorations: int = 0
    #: Largest frontier (discovered-but-unexpanded set) seen so far.
    peak_frontier: int = 0
    #: Wall-clock seconds spent growing the shared graph.
    explore_seconds: float = 0.0
    #: Per-query invocation counts, keyed by procedure name.
    queries: Dict[str, int] = field(default_factory=dict)
    #: Per-query cumulative wall-clock seconds.
    query_seconds: Dict[str, float] = field(default_factory=dict)
    #: Successor-cache hits/misses (mirrors the memoizing semantics).
    successor_cache_hits: int = 0
    successor_cache_misses: int = 0
    #: Distinct hash-consed states in the intern table.
    interned_states: int = 0
    #: Embedding queries answered by the session's EmbeddingIndex.
    embedding_calls: int = 0
    #: Embedding queries refuted by the signature domination test alone.
    embedding_signature_refutations: int = 0
    #: Embedding queries answered from the session-lifetime pair memo.
    embedding_memo_hits: int = 0

    #: Backref to the session's EmbeddingIndex (not a dataclass field);
    #: lets the counters refresh lazily whenever the stats are read.
    _embedding_index = None

    def sync_embedding(self) -> None:
        """Refresh the embedding counters from the session's index."""
        index = self._embedding_index
        if index is not None:
            self.embedding_calls = index.calls
            self.embedding_signature_refutations = index.signature_refutations
            self.embedding_memo_hits = index.memo_hits

    @contextmanager
    def timed(self, name: str):
        """Record one invocation of query *name* and its wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.queries[name] = self.queries.get(name, 0) + 1
            self.query_seconds[name] = self.query_seconds.get(name, 0.0) + elapsed
            self.sync_embedding()

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (used by the benchmark harnesses)."""
        self.sync_embedding()
        return {
            "states_discovered": self.states_discovered,
            "states_expanded": self.states_expanded,
            "transitions_fired": self.transitions_fired,
            "explorations": self.explorations,
            "peak_frontier": self.peak_frontier,
            "explore_seconds": self.explore_seconds,
            "queries": dict(self.queries),
            "query_seconds": dict(self.query_seconds),
            "successor_cache_hits": self.successor_cache_hits,
            "successor_cache_misses": self.successor_cache_misses,
            "interned_states": self.interned_states,
            "embedding_calls": self.embedding_calls,
            "embedding_signature_refutations": self.embedding_signature_refutations,
            "embedding_memo_hits": self.embedding_memo_hits,
        }

    def render(self) -> str:
        """Human-readable multi-line summary (``rpcheck --stats``)."""
        self.sync_embedding()
        lines = [
            f"states discovered  : {self.states_discovered}",
            f"states expanded    : {self.states_expanded}",
            f"transitions fired  : {self.transitions_fired}",
            f"explorations       : {self.explorations}",
            f"peak frontier      : {self.peak_frontier}",
            f"successor cache    : {self.successor_cache_hits} hits / "
            f"{self.successor_cache_misses} misses",
            f"interned states    : {self.interned_states}",
            f"embedding calls    : {self.embedding_calls} "
            f"({self.embedding_signature_refutations} signature refutations, "
            f"{self.embedding_memo_hits} memo hits)",
            f"explore time       : {self.explore_seconds:.3f}s",
        ]
        for name in sorted(self.queries):
            lines.append(
                f"query {name:<18} x{self.queries[name]}"
                f"  ({self.query_seconds.get(name, 0.0):.3f}s)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ProgressEvent:
    """A snapshot emitted to progress listeners during exploration."""

    states: int
    transitions: int
    frontier: int
    elapsed: float


#: Signature of a progress listener (see AnalysisSession.on_progress).
ProgressListener = Callable[[ProgressEvent], None]


class AnalysisSession:
    """A per-scheme analysis engine with one shared, resumable state graph.

    Parameters
    ----------
    scheme:
        The RP scheme under analysis.
    initial:
        Exploration root (default ``σ0``).  A session answers queries
        about ``Reach(initial)``; procedures asked about a *different*
        initial state transparently use a throwaway session.
    progress_interval:
        Emit a :class:`ProgressEvent` to registered listeners every this
        many state expansions.
    embedding_index:
        The session's :class:`~repro.core.embedding.EmbeddingIndex`
        (default: a fresh accelerated one).  Pass
        ``EmbeddingIndex(accelerated=False)`` to run every embedding
        query through the naive reference path — the A/B switch of
        ``benchmarks/bench_wqo_index.py``.
    semantics:
        The successor engine (default: a fresh
        :class:`MemoizingSemantics`).  Injection point for the chaos
        harness (:class:`repro.robust.ChaosSemantics`) and any other
        instrumented backend; must be built for the same scheme.
    budget:
        The session's ambient :class:`~repro.robust.Budget`.  Checked
        once per state expansion (and inside the procedures' auxiliary
        search loops); usually installed per-call by the governed
        procedure wrappers rather than at construction.
    workers:
        Exploration worker processes (default 1).  With ``workers=1``
        the session runs the historical in-process BFS, byte-identical
        to previous releases; with ``workers=N`` successor computation
        is sharded across a :class:`repro.analysis.parallel.WorkerPool`
        while the coordinator applies expansions in frontier order, so
        the grown graph — and therefore every verdict, checkpoint and
        stat derived from it — matches the sequential run state for
        state.  The pool is spawned lazily on the first parallel
        exploration and torn down by :meth:`close` (or the session's
        finalizer).

    Attributes
    ----------
    graph:
        The shared :class:`StateGraph`.  Always a BFS-order prefix of the
        full exploration: growing it to budget ``2N`` after a pause at
        ``N`` yields state-for-state the same graph as a fresh ``2N`` run.
    semantics:
        The shared :class:`MemoizingSemantics` (successor cache + intern
        table), also used by the procedures' auxiliary searches.
    embedding_index:
        Session-lifetime embedding memoisation (signature-pruned, keyed
        by gap identity) that boundedness, sup-reachability,
        inevitability, coverability and persistence route through.
    stats:
        The session's :class:`AnalysisStats`.
    memo:
        A procedure-managed cache for conclusive verdicts and other
        derived artefacts (CTL checker, sup-reachability antichain, ...).
    """

    def __init__(
        self,
        scheme: RPScheme,
        initial: Optional[HState] = None,
        *,
        progress_interval: int = 8192,
        embedding_index: Optional[EmbeddingIndex] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        semantics: Optional[MemoizingSemantics] = None,
        budget: Optional[Any] = None,
        workers: int = 1,
        max_worker_restarts: Optional[int] = None,
    ) -> None:
        self.scheme = scheme
        if semantics is not None and semantics.scheme is not scheme:
            raise AnalysisError(
                "session semantics was built for a different scheme "
                f"({semantics.scheme.name!r}, session scheme {scheme.name!r})"
            )
        self.semantics = semantics if semantics is not None else MemoizingSemantics(scheme)
        #: Ambient resource budget (duck-typed; see repro.robust.Budget).
        #: ``None`` means ungoverned — the historical behaviour.
        self.budget = budget
        start = initial if initial is not None else self.semantics.initial_state
        self.initial = self.semantics.intern(start)
        self.embedding_index = (
            embedding_index if embedding_index is not None else EmbeddingIndex()
        )
        # Flight-recorder default: sessions without an explicit tracer
        # record their phase spans into the process-wide bounded ring
        # buffer, so an incident dump always has recent telemetry.  Span
        # discipline (phases, never per-state work) keeps this within
        # the <5% obs-overhead bar (benchmarks/bench_obs_overhead.py).
        self.tracer = tracer if tracer is not None else Tracer(ambient_recorder())
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Single source of truth for frontier size (current/peak): the
        #: explore loop samples it, everything else only reads it.
        self._frontier_gauge = self.metrics.gauge(
            "explore.frontier", "discovered-but-unexpanded states"
        )
        self.stats = AnalysisStats()
        self.stats._embedding_index = self.embedding_index
        self.graph = StateGraph(scheme, self.initial)
        self.graph._add_state(self.initial, None)
        self.graph.unexpanded = [self.initial]
        self.memo: Dict[Any, Any] = {}
        self._queue: deque = deque([self.initial])
        self._expanded = 0
        self._progress_interval = max(1, progress_interval)
        self._listeners: List[ProgressListener] = []
        # ensure_explored concurrency contract (see the method docstring)
        self._explore_cv = threading.Condition()
        self._explore_active = False
        self._explore_target = 0
        #: Exploration requests answered by waiting on an in-flight
        #: exploration instead of running one (the serve daemon's
        #: coalescing counter; purely informational).
        self.coalesced_explorations = 0
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise AnalysisError(
                f"workers must be a positive int, got {workers!r}"
            )
        self._workers = workers
        if max_worker_restarts is not None and (
            not isinstance(max_worker_restarts, int)
            or isinstance(max_worker_restarts, bool)
            or max_worker_restarts < 0
        ):
            raise AnalysisError(
                "max_worker_restarts must be None or a non-negative int, "
                f"got {max_worker_restarts!r}"
            )
        #: Worker respawns tolerated before degrading to sequential
        #: exploration; ``None`` uses the engine default
        #: (:data:`repro.analysis.parallel.DEFAULT_MAX_WORKER_RESTARTS`).
        self.max_worker_restarts = max_worker_restarts
        #: Worker respawns performed on behalf of this session so far.
        self._worker_restarts = 0
        #: Set when the respawn budget ran out: exploration continues
        #: sequentially until :attr:`workers` is assigned again.
        self._parallel_degraded = False
        #: Lazily spawned repro.analysis.parallel.WorkerPool (workers > 1).
        self._pool = None
        self._frontier_gauge.set(len(self._queue))
        self._sync_stats()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def on_progress(self, listener: ProgressListener) -> None:
        """Register *listener* for periodic exploration progress events."""
        self._listeners.append(listener)

    @contextmanager
    def phase(self, name: str, **attrs: Any):
        """One top-level query phase: a stats timer plus a tracer span.

        Decision procedures wrap their body in this so every query shows
        up both in :class:`AnalysisStats` (counts, cumulative seconds) and
        in the trace (one span, with sub-phase spans nested under it).
        Yields the span so callers can attach result attributes.

        The phase is also the flight-recorder trigger point: a
        :class:`~repro.errors.BudgetExhausted`, a
        :class:`~repro.errors.CorruptionDetected`, or any *unexpected*
        exception (anything outside the typed :class:`RPError`
        hierarchy) escaping the body dumps a diagnostic bundle via
        :func:`repro.obs.record_incident` — a no-op unless a dump target
        is configured, idempotent per exception, and never masking the
        original error.  Routine :class:`AnalysisBudgetExceeded` state
        overruns stay quiet; they are an answer, not an incident.
        """
        start = time.perf_counter()
        try:
            with self.stats.timed(name):
                with self.tracer.span(name, **attrs) as span:
                    try:
                        yield span
                    except (BudgetExhausted, CorruptionDetected) as error:
                        record_incident(
                            self, error, reason=f"{type(error).__name__} in {name}"
                        )
                        raise
                    except RPError:
                        raise
                    except Exception as error:
                        record_incident(
                            self,
                            error,
                            reason=f"uncaught {type(error).__name__} in {name}",
                        )
                        raise
        finally:
            # live per-observation feed: the query-latency histogram gets
            # real samples (bucketed p50/p95/p99), not just a count/sum
            # snapshot synced after the fact
            self.metrics.histogram(
                "session.query_seconds", "per-procedure wall time"
            ).labels(procedure=name).observe(time.perf_counter() - start)

    def _sync_stats(self) -> None:
        stats = self.stats
        stats.states_discovered = len(self.graph)
        stats.states_expanded = self._expanded
        # peak_frontier has exactly one source of truth: the frontier
        # gauge, sampled by the explore loop (and once at construction).
        stats.peak_frontier = int(self._frontier_gauge.max or 0)
        stats.successor_cache_hits = self.semantics.cache_hits
        stats.successor_cache_misses = self.semantics.cache_misses
        stats.interned_states = self.semantics.interned_states
        stats.sync_embedding()

    def _sample_progress(self, started: float) -> None:
        """Periodic mid-exploration sample: gauges, a trace event, and the
        legacy :class:`ProgressEvent` listener callback (now a thin adapter
        over the same snapshot)."""
        states = len(self.graph)
        transitions = self.graph.num_transitions
        frontier = len(self._queue)
        elapsed = time.perf_counter() - started
        metrics = self.metrics
        metrics.gauge("explore.states", "states discovered so far").set(states)
        metrics.gauge("explore.transitions", "transitions recorded so far").set(
            transitions
        )
        semantics = self.semantics
        lookups = semantics.cache_hits + semantics.cache_misses
        if lookups:
            metrics.gauge(
                "explore.cache_hit_rate", "successor-cache hit fraction"
            ).set(semantics.cache_hits / lookups)
        if self.tracer.enabled:
            self.tracer.event(
                "explore.progress",
                states=states,
                transitions=transitions,
                frontier=frontier,
                elapsed=elapsed,
            )
        if self._listeners:
            event = ProgressEvent(
                states=states,
                transitions=transitions,
                frontier=frontier,
                elapsed=elapsed,
            )
            for listener in self._listeners:
                listener(event)

    def sync_metrics(self) -> MetricsRegistry:
        """Publish the session's counters into its metrics registry.

        Hot paths (the explore loop, the Embedder) keep raw attribute
        counters; this snapshots them into the registry via
        :meth:`~repro.obs.CounterMetric.set_total` so reading metrics
        never taxes exploration.  Returns the registry for convenience.
        """
        self._sync_stats()
        stats = self.stats
        metrics = self.metrics
        metrics.counter(
            "explore.states_discovered", "distinct states in the shared graph"
        ).set_total(stats.states_discovered)
        metrics.counter(
            "explore.states_expanded", "states whose successors were expanded"
        ).set_total(stats.states_expanded)
        metrics.counter(
            "explore.transitions_fired", "transitions recorded in the shared graph"
        ).set_total(stats.transitions_fired)
        metrics.counter(
            "explore.explorations", "from-scratch exploration passes"
        ).set_total(stats.explorations)
        metrics.counter(
            "semantics.cache_hits", "successor-cache hits"
        ).set_total(stats.successor_cache_hits)
        metrics.counter(
            "semantics.cache_misses", "successor-cache misses"
        ).set_total(stats.successor_cache_misses)
        metrics.counter(
            "semantics.interned_states", "distinct hash-consed states"
        ).set_total(stats.interned_states)
        queries = metrics.counter("session.queries", "per-procedure query counts")
        query_time = metrics.histogram(
            "session.query_seconds", "per-procedure wall time"
        )
        for name, count in stats.queries.items():
            queries.labels(procedure=name).set_total(count)
        for name, seconds in stats.query_seconds.items():
            child = query_time.labels(procedure=name)
            behind = stats.queries.get(name, 1) - child.count
            if behind > 0:
                # queries recorded outside phase() (sub-engines timing
                # straight into stats, restored checkpoints): fold the
                # missing mass in as average-valued observations so the
                # histogram's count/sum stay consistent with the stats
                average = max(0.0, (seconds - child.sum) / behind)
                for _ in range(behind):
                    child.observe(average)
        calls = metrics.counter("embedding.calls", "embedding queries answered")
        sig = metrics.counter(
            "embedding.signature_refutations",
            "embedding queries refuted by signature domination alone",
        )
        memo = metrics.counter(
            "embedding.memo_hits", "embedding queries answered from the pair memo"
        )
        for gap_key, embedder in self.embedding_index.embedders():
            label = "*" if gap_key is None else ",".join(sorted(gap_key))
            calls.labels(gap=label).set_total(embedder.calls)
            sig.labels(gap=label).set_total(embedder.sig_refutations)
            memo.labels(gap=label).set_total(embedder.memo_hits)
        calls.set_total(self.embedding_index.calls)
        sig.set_total(self.embedding_index.signature_refutations)
        memo.set_total(self.embedding_index.memo_hits)
        return metrics

    # ------------------------------------------------------------------
    # Parallel exploration pool
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Exploration worker processes (1 = the sequential fast path)."""
        return self._workers

    @workers.setter
    def workers(self, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise AnalysisError(f"workers must be a positive int, got {value!r}")
        if value != self._workers and self._pool is not None and self._pool.size != value:
            # wrong-sized pool: tear it down now, respawn lazily on the
            # next parallel exploration (a pool left warm while workers
            # is 1 costs nothing — its processes block in recv)
            self._pool.close()
            self._pool = None
        self._workers = value
        # an explicit worker-count assignment re-arms a session that
        # degraded to sequential after exhausting its respawn budget
        self._parallel_degraded = False

    def _ensure_pool(self):
        """The session's :class:`~repro.analysis.parallel.WorkerPool`."""
        pool = self._pool
        if pool is None or pool.closed or pool.size != self._workers:
            from .parallel import WorkerPool

            if pool is not None:
                pool.close()
            pool = WorkerPool(self.scheme, self._workers)
            self._pool = pool
            # a dropped session must not leak worker processes; close()
            # is idempotent so explicit close + finalize coexist safely
            weakref.finalize(self, pool.close)
        return pool

    def close(self) -> None:
        """Release the worker pool, if one was spawned (idempotent).

        Sequential sessions hold no external resources; calling this is
        always safe and the session remains usable afterwards — the pool
        respawns lazily if another parallel exploration runs.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Resource governance & checkpointing
    # ------------------------------------------------------------------

    @property
    def frontier(self):
        """The discovered-but-unexpanded states, in BFS queue order."""
        return self._queue

    @property
    def expanded_count(self) -> int:
        """States whose successors have been expanded into the graph."""
        return self._expanded

    def checkpoint(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the session's resumable state.

        Captures the scheme, the explored BFS prefix (states in discovery
        order plus the recorded transitions of every expanded state), the
        frontier and the memoized antichains; feed the result to
        :meth:`restore` — in this process or another — to continue
        exactly where this session paused.
        """
        from ..robust.checkpoint import checkpoint_session

        return checkpoint_session(self)

    @classmethod
    def restore(
        cls,
        data: Dict[str, Any],
        *,
        scheme: Optional[RPScheme] = None,
        **session_kwargs: Any,
    ) -> "AnalysisSession":
        """Rebuild a session from a :meth:`checkpoint` snapshot.

        With *scheme* given, the checkpoint must have been taken for a
        structurally identical scheme; otherwise the scheme embedded in
        the checkpoint is used.  Extra keyword arguments pass through to
        the constructor (``tracer=``, ``metrics=``, ``budget=``, ...).
        """
        from ..robust.checkpoint import restore_session

        return restore_session(data, scheme=scheme, **session_kwargs)

    def _restore_frontier(self, expanded: int, complete: bool) -> None:
        """Reset the explore cursor after a checkpoint replay.

        The frontier of a BFS prefix is exactly the discovery-ordered
        suffix of un-expanded states, so the queue is rebuilt from the
        graph rather than stored separately.
        """
        self._expanded = expanded
        self._queue = deque(self.graph.states[expanded:])
        self.graph.unexpanded = list(self._queue)
        self.graph.complete = complete and not self._queue
        self.stats.transitions_fired = self.graph.num_transitions
        self._frontier_gauge.set(len(self._queue))
        self._sync_stats()

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------

    def explore(
        self,
        max_states: Optional[int] = None,
        *,
        stop_when: Optional[Callable[[HState], bool]] = None,
    ) -> StateGraph:
        """Grow the shared graph up to *max_states* discovered states.

        Resumes from the saved frontier; already-expanded work is never
        redone.  ``stop_when`` is evaluated on **newly discovered** states
        only (callers scan the existing graph first); when it fires, the
        current state's expansion is finished — keeping the graph a clean
        BFS prefix — and growth pauses.

        **Overshoot contract.**  States are expanded whole and the state
        budget is checked *between* expansions, so the graph may exceed
        ``max_states`` by at most one expansion batch — the out-degree of
        the last state expanded — and never by more.  The rule is
        deterministic, which is what makes paused-and-resumed growth
        bit-identical to a fresh run.

        Under an ambient :attr:`budget`, its ``max_states`` tightens the
        cap and ``budget.check`` runs once per expansion (deadline,
        cancellation, periodic memory sampling).  Expansion is atomic:
        successors are computed and validated *before* the state leaves
        the frontier, so an interruption — budget exhaustion, an injected
        fault, a detected corruption — always leaves the graph a clean
        resumable BFS prefix.

        With :attr:`workers` > 1 the body below is replaced by the
        sharded engine (:func:`repro.analysis.parallel.explore_parallel`),
        which upholds every contract above — same budget resolution, same
        overshoot rule, same stop-when semantics — and grows the same
        graph, state for state.
        """
        if self._workers > 1 and not self._parallel_degraded:
            from .parallel import explore_parallel

            return explore_parallel(self, max_states, stop_when=stop_when)
        budget = max_states if max_states is not None else DEFAULT_MAX_STATES
        ambient = self.budget
        if ambient is not None:
            budget = ambient.effective_max_states(budget)
        graph = self.graph
        if not self._queue:
            return graph
        started = time.perf_counter()
        expanded_before = self._expanded
        queue = self._queue
        semantics = self.semantics
        index = graph.index
        stats = self.stats
        frontier_gauge = self._frontier_gauge
        stopped = False
        next_progress = self._expanded + self._progress_interval
        try:
            with self.tracer.span(
                "session.explore", budget=budget, resumed=expanded_before > 0
            ) as span:
                while queue and not stopped and len(graph.states) < budget:
                    if ambient is not None:
                        ambient.check(
                            states=len(graph.states),
                            frontier=len(queue),
                            expanded=self._expanded,
                        )
                    state = queue[0]
                    successors = semantics.successors(state)
                    for transition in successors:
                        if transition.source != state:
                            raise CorruptionDetected(
                                f"successor computation returned a transition "
                                f"sourced at {transition.source.to_notation()} "
                                f"while expanding {state.to_notation()}"
                            )
                    queue.popleft()
                    out = graph.edges[index[state]]
                    for transition in successors:
                        out.append(transition)
                        stats.transitions_fired += 1
                        target = transition.target
                        if target in index:
                            continue
                        graph._add_state(target, transition)
                        queue.append(target)
                        if (
                            stop_when is not None
                            and not stopped
                            and stop_when(target)
                        ):
                            stopped = True
                    self._expanded += 1
                    frontier_gauge.set(len(queue))
                    if self._expanded >= next_progress:
                        next_progress += self._progress_interval
                        self._sample_progress(started)
                span.set(
                    states=len(graph.states),
                    expanded=self._expanded - expanded_before,
                    stopped=stopped,
                )
        finally:
            graph.complete = not queue
            graph.unexpanded = list(queue)
            if expanded_before == 0 and self._expanded > 0:
                stats.explorations += 1
            stats.explore_seconds += time.perf_counter() - started
            self._sync_stats()
        return graph

    def ensure_explored(
        self, max_states: Optional[int] = None
    ) -> StateGraph:
        """Grow the shared graph to *max_states*, safely from many threads.

        **Concurrency contract.**  :meth:`explore` itself is
        single-threaded — it mutates the frontier queue and the graph in
        place.  ``ensure_explored`` is the thread-safe entry point the
        serve daemon routes through:

        * at most one exploration runs per session at any time
          (exploration is *serialized*);
        * a caller whose requested budget is already covered — by the
          current graph, or by an exploration in flight whose target is
          at least as large — **waits and coalesces** onto that result
          instead of queueing a redundant exploration
          (:attr:`coalesced_explorations` counts these);
        * a caller asking for *more* than the in-flight target waits its
          turn and then resumes exploration from the saved frontier —
          never from scratch — so the total work is the same as one big
          exploration.

        Returns the shared graph, grown to at least the requested budget
        or to completion.  Note this method only serializes
        *exploration*; query-level state (``memo``, stats, the embedding
        index) is serialized by the caller (the serve pool holds one
        lock per pooled scheme around each query).
        """
        budget = max_states if max_states is not None else DEFAULT_MAX_STATES
        if self.budget is not None:
            budget = self.budget.effective_max_states(budget)
        coalesced = False
        while True:
            with self._explore_cv:
                if self.graph.complete or len(self.graph) >= budget:
                    return self.graph
                if not self._explore_active:
                    self._explore_active = True
                    self._explore_target = budget
                    break
                # an exploration is in flight; wait for it (coalescing
                # when its target already covers this request)
                if self._explore_target >= budget and not coalesced:
                    coalesced = True
                    self.coalesced_explorations += 1
                self._explore_cv.wait()
        try:
            self.explore(budget)
        finally:
            with self._explore_cv:
                self._explore_active = False
                self._explore_cv.notify_all()
        return self.graph

    def explore_or_raise(
        self, max_states: Optional[int] = None, what: str = "exploration"
    ) -> StateGraph:
        """Grow to saturation; raise when the budget does not suffice.

        The exception reports the *exact* exploration extent at
        exhaustion — discovered states and frontier size — not the
        requested budget, which the overshoot contract of
        :meth:`explore` allows the graph to exceed by one batch.
        """
        budget = max_states if max_states is not None else DEFAULT_MAX_STATES
        graph = self.explore(budget)
        if not graph.complete:
            raise AnalysisBudgetExceeded(
                f"{what}: state budget of {budget} exhausted at exactly "
                f"{len(graph)} discovered states "
                f"({len(graph.unexpanded)} still unexpanded; the scheme may "
                f"be unbounded — raise max_states or use a procedure with an "
                f"unboundedness certificate)",
                explored=len(graph),
            )
        return graph

    # ------------------------------------------------------------------
    # Shared derived artefacts
    # ------------------------------------------------------------------

    def kept_states(self, max_kept: int) -> List[HState]:
        """The full domination-pruned reachable antichain cover (cached).

        This is the sup-reachability engine's kept-state set; persistence
        and every downward-closed emptiness question scan it.  The search
        terminates on every scheme by the wqo property, so a completed
        result is budget-independent and cached for the session's life.
        """
        cached = self.memo.get("kept-states")
        if cached is None:
            from .sup_reachability import _kept_states

            with self.stats.timed("sup-reach-engine"):
                with self.tracer.span(
                    "sup-reach.antichain-saturation", max_kept=max_kept
                ) as span:
                    cached = _kept_states(
                        self.semantics,
                        self.initial,
                        max_kept,
                        index=self.embedding_index,
                        budget=self.budget,
                    )
                    span.set(kept=len(cached))
            self.memo["kept-states"] = cached
        return cached


def resolve_session(
    scheme: RPScheme,
    session: Optional[AnalysisSession],
    initial: Optional[HState],
) -> AnalysisSession:
    """The session a procedure should use.

    A supplied *session* is validated against *scheme* and used whenever
    the query's initial state matches; otherwise (including the common
    no-session case) a throwaway session is created, which reproduces the
    historical one-exploration-per-call behaviour.
    """
    if session is not None:
        if session.scheme is not scheme:
            raise AnalysisError(
                "analysis session was created for a different scheme "
                f"({session.scheme.name!r}, queried with {scheme.name!r})"
            )
        if initial is None or initial == session.initial:
            return session
    return AnalysisSession(scheme, initial=initial)
