"""Variable-level write-conflict analysis (§5.3, as a library API).

"Listing all nodes of G where a given global variable is assigned new
values, and checking that these nodes cannot occur simultaneously in a
hierarchical state, we know there will be no write-conflict in the
machine hardware."

Given a compiled concrete program, :func:`race_report` collects, per
global variable, the scheme nodes assigning it and decides pairwise
simultaneity — including the *self* pair (two parallel invocations both
at the same assignment node).  The verdicts come straight from the
mutual-exclusion engine and inherit its certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.compiler import CompiledProgram
from .certificates import AnalysisVerdict
from .mutex import nodes_never_cooccur
from .session import AnalysisSession, resolve_session


def variable_writers(compiled: CompiledProgram) -> Dict[str, List[str]]:
    """Per global variable, the scheme nodes assigning it."""
    writers: Dict[str, List[str]] = {}
    for node in compiled.scheme:
        if node.label is None:
            continue
        definition = compiled.actions.get(node.label)
        if (
            definition is not None
            and definition.kind == "assign"
            and definition.scope == "global"
        ):
            writers.setdefault(definition.target, []).append(node.id)
    return writers


@dataclass(frozen=True)
class VariableRaces:
    """Conflict findings for one global variable."""

    variable: str
    writer_nodes: Tuple[str, ...]
    conflicts: Tuple[Tuple[Tuple[str, str], AnalysisVerdict], ...]

    @property
    def is_safe(self) -> bool:
        return not self.conflicts


@dataclass(frozen=True)
class RaceReport:
    """Whole-program write-conflict report."""

    variables: Tuple[VariableRaces, ...]

    @property
    def is_safe(self) -> bool:
        return all(entry.is_safe for entry in self.variables)

    def conflicts(self) -> List[Tuple[str, Tuple[str, str]]]:
        """Flat list of ``(variable, (node, node))`` conflicts."""
        return [
            (entry.variable, pair)
            for entry in self.variables
            for pair, _verdict in entry.conflicts
        ]


def race_report(
    compiled: CompiledProgram,
    variables: Optional[Sequence[str]] = None,
    *,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
) -> RaceReport:
    """Check all (or the given) global variables for write conflicts.

    A pair of writer nodes conflicts when they can occur simultaneously in
    a reachable hierarchical state; the self pair ``(n, n)`` asks for two
    distinct parallel invocations at the same node.

    Every pair query runs on one shared session, so the program's
    reachable fragment is explored once however many variables and writer
    pairs the report covers.
    """
    sess = resolve_session(compiled.scheme, session, None)
    writers = variable_writers(compiled)
    wanted = list(variables) if variables is not None else sorted(writers)
    entries: List[VariableRaces] = []
    for variable in wanted:
        nodes = writers.get(variable, [])
        conflicts: List[Tuple[Tuple[str, str], AnalysisVerdict]] = []
        for i, a in enumerate(nodes):
            for b in nodes[i:]:
                pair_nodes = [a, b] if a != b else [a, a]
                verdict = nodes_never_cooccur(
                    compiled.scheme, pair_nodes, max_states=max_states, session=sess
                )
                if not verdict.holds:
                    conflicts.append(((a, b), verdict))
        entries.append(
            VariableRaces(
                variable=variable,
                writer_nodes=tuple(nodes),
                conflicts=tuple(conflicts),
            )
        )
    return RaceReport(variables=tuple(entries))
