"""The Inevitability Problem (Theorem 6) and its halting corollary.

*Input:* a scheme ``G``, a state ``σ``, and a finite basis ``I ⊆ M(G)``.
*Output:* true iff **all** computations starting from ``σ`` eventually
reach a state **not** in the upward closure of ``I`` w.r.t. the
⋆-embedding (:class:`~repro.core.embedding.GapEmbedding`).

A computation is a maximal run (infinite, or ending in the unique terminal
state ``∅``).  Inevitability fails exactly when some maximal run stays in
``↑I`` forever, which can happen in three ways:

1. a finite maximal run entirely inside ``↑I`` — possible only when
   ``∅ ∈ ↑I`` (i.e. ``∅ ∈ I``), since ``∅`` is the only terminal state;
2. a cycle inside the ``↑I``-restricted reachable graph (a concrete lasso,
   always a proof of violation);
3. unbounded growth inside ``↑I`` (an infinite acyclic run, by König's
   lemma applied to the restricted finitely-branching system).

The procedure explores the restriction of ``M_G`` to ``↑I``.  When the
restricted system saturates, the answer is exact: inevitability holds iff
the restricted graph is acyclic and no in-``↑I`` terminated run exists.
Case 3 on non-saturating systems is detected by the same
strict-self-covering machinery as boundedness, additionally demanding that
the replayed pump stay inside ``↑I`` (flagged ``exact=False`` for schemes
with ``wait`` nodes, as in :mod:`repro.analysis.boundedness`).

Corollary 7 falls out by instantiating ``I`` with all single-invocation
states: ``↑I`` is then "not yet terminated" and inevitability is halting —
see :func:`halting_via_inevitability`, cross-checked in the tests against
:mod:`repro.analysis.termination`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.embedding import EmbeddingIndex, GapEmbedding, PLAIN_EMBEDDING
from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics, Transition
from ..errors import AnalysisBudgetExceeded, CorruptionDetected
from ..robust.governance import governed
from .boundedness import _certify_pump, _covering_ancestor
from .certificates import (
    AnalysisVerdict,
    LassoCertificate,
    SaturationCertificate,
    WitnessPath,
)
from .explore import DEFAULT_MAX_STATES
from .session import AnalysisSession, resolve_session


def inevitability(
    scheme: RPScheme,
    basis: Sequence[HState],
    *,
    initial: Optional[HState] = None,
    embedding: Optional[GapEmbedding] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    replays: Optional[int] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether all computations eventually leave ``↑basis``.

    *embedding* selects the ⋆-embedding variant; the default is the
    unrestricted embedding (``GapEmbedding(None)``).

    The ``↑I``-restricted exploration cannot reuse the session's (whole)
    state graph, but runs through the session's memoizing semantics, so
    successor computations are shared with every other query.
    """
    max_states = DEFAULT_MAX_STATES if max_states is None else max_states
    fixed_replays = 2 if replays is None else replays
    ordering = embedding if embedding is not None else PLAIN_EMBEDDING
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase(
            "inevitability", basis_size=len(basis), budget=max_states
        ) as span:
            verdict = _inevitability(sess, basis, ordering, max_states, fixed_replays)
            span.set(holds=verdict.holds, method=verdict.method)
            return verdict

    return governed(sess, budget, "inevitability", body)


def _inevitability(
    sess: AnalysisSession,
    basis: Sequence[HState],
    ordering: GapEmbedding,
    max_states: int,
    replays: int,
) -> AnalysisVerdict:
    scheme = sess.scheme
    semantics = sess.semantics
    start = sess.initial
    index = sess.embedding_index

    def inside(state: HState) -> bool:
        return index.dominates(state, basis, ordering)

    if not inside(start):
        return AnalysisVerdict(
            holds=True, method="initial-outside", certificate=None, exact=True
        )

    # Restricted exploration: BFS over in-↑I states, recording the in-↑I
    # subgraph for exact lasso detection at saturation, and watching for
    # strict self-coverings (the unbounded-inside case).
    parent: Dict[HState, Optional[Transition]] = {start: None}
    edges: Dict[HState, List[Transition]] = {}
    queue: deque = deque([start])
    transitions_seen = 0
    ambient = sess.budget
    with sess.tracer.span(
        "inevitability.restricted-exploration", budget=max_states
    ) as span:
        while queue:
            if ambient is not None:
                ambient.check(states=len(parent), frontier=len(queue))
            state = queue.popleft()
            successors = semantics.successors(state)
            for transition in successors:
                if transition.source != state:
                    raise CorruptionDetected(
                        f"inevitability: successor computation returned a "
                        f"transition sourced at "
                        f"{transition.source.to_notation()} while expanding "
                        f"{state.to_notation()}"
                    )
            edges[state] = []
            if not successors:
                # a maximal run terminates inside ↑I (state is ∅ by Prop 3)
                return AnalysisVerdict(
                    holds=False,
                    method="terminating-run-inside",
                    certificate=WitnessPath(tuple(_path(parent, state))),
                    exact=True,
                    details={"explored": len(parent)},
                )
            for transition in successors:
                transitions_seen += 1
                target = transition.target
                if not inside(target):
                    continue
                edges[state].append(transition)
                if target in parent:
                    continue
                parent[target] = transition
                pump = _covering_ancestor(parent, transition, index)
                if pump is not None:
                    with sess.tracer.span(
                        "inevitability.certificate", pump_length=len(pump)
                    ):
                        certificate = _certify_pump(
                            scheme, semantics, parent, pump, replays, index
                        )
                        stays = certificate is not None and _pump_stays_inside(
                            semantics, certificate, inside, replays, index
                        )
                    if stays:
                        return AnalysisVerdict(
                            holds=False,
                            method="self-covering-inside",
                            certificate=certificate,
                            exact=False,
                            details={"explored": len(parent)},
                        )
                if len(parent) >= max_states:
                    raise AnalysisBudgetExceeded(
                        f"inevitability: restricted system did not saturate "
                        f"within {max_states} states",
                        explored=len(parent),
                    )
                queue.append(target)
        span.set(states=len(parent), transitions=transitions_seen)
    with sess.tracer.span("inevitability.lasso-search", states=len(edges)):
        lasso = _find_lasso(start, edges)
    if lasso is not None:
        return AnalysisVerdict(
            holds=False,
            method="lasso-inside",
            certificate=lasso,
            exact=True,
            details={"explored": len(parent)},
        )
    return AnalysisVerdict(
        holds=True,
        method="restricted-saturation",
        certificate=SaturationCertificate(len(parent), transitions_seen),
        exact=True,
        details={"explored": len(parent)},
    )


def halting_via_inevitability(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Corollary 7: halting as inevitability of leaving "non-terminated".

    ``I`` = all single-invocation states ``{(q,∅)}``: ``↑I`` is exactly the
    set of non-empty states, so "eventually leave ``↑I``" means "eventually
    reach ∅" — i.e. every computation terminates.  Cross-checked in the
    tests against the direct bounded-and-acyclic characterisation of
    :mod:`repro.analysis.termination`.
    """
    basis = [HState.leaf(node) for node in scheme.node_ids]
    return inevitability(
        scheme,
        basis,
        initial=initial,
        max_states=max_states,
        session=session,
        budget=budget,
    )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _path(parent: Dict, state: HState) -> List[Transition]:
    path: List[Transition] = []
    current = state
    while parent[current] is not None:
        path.append(parent[current])
        current = parent[current].source
    path.reverse()
    return path


def _find_lasso(
    start: HState, edges: Dict[HState, List[Transition]]
) -> Optional[LassoCertificate]:
    """A (stem, loop) witness of a cycle in the restricted graph, if any.

    Iterative DFS with an explicit trail so arbitrarily deep graphs are
    handled without recursion limits.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[HState, int] = {state: WHITE for state in edges}
    trail: List[Transition] = []
    stack: List[Tuple[HState, int]] = [(start, 0)]
    colour[start] = GREY
    while stack:
        state, position = stack[-1]
        out = edges.get(state, [])
        if position < len(out):
            stack[-1] = (state, position + 1)
            transition = out[position]
            target = transition.target
            status = colour.get(target, BLACK)
            if status == GREY:
                # close the loop at `target`
                trail.append(transition)
                split = 0
                for index, step in enumerate(trail):
                    if step.source == target:
                        split = index
                return LassoCertificate(
                    stem=tuple(trail[:split]), loop=tuple(trail[split:])
                )
            if status == WHITE:
                colour[target] = GREY
                trail.append(transition)
                stack.append((target, 0))
        else:
            colour[state] = BLACK
            stack.pop()
            if trail:
                trail.pop()
    return None


def _pump_stays_inside(
    semantics,
    certificate,
    inside,
    replays: int,
    index: Optional[EmbeddingIndex] = None,
) -> bool:
    """Check the pump's replayed iterations remain in ``↑I`` throughout."""
    if index is None:
        index = EmbeddingIndex()
    for transition in certificate.pump:
        if not inside(transition.target):
            return False
    state = certificate.pumped
    descriptors = list(certificate.pump_descriptors)
    for _ in range(max(1, replays)):
        trace = semantics.replay(state, descriptors)
        if trace is None:
            return False
        if any(not inside(t.target) for t in trace):
            return False
        previous, state = state, trace[-1].target
        if state.size <= previous.size or not index.strictly_embeds(previous, state):
            return False
    return True
