"""The Reachability and Node Reachability Problems (Theorem 4).

*Reachability*: given ``G`` and states ``σ, σ'``, is there a transition
sequence of ``M_G`` from ``σ`` to ``σ'``?

*Node Reachability*: given ``G``, a node ``q`` and a state ``σ``, can a
state containing an occurrence of ``q`` be reached from ``σ``?

The paper's exact algorithms live in the unpublished [Sch96]; this module
layers the machinery available here (see DESIGN.md):

* **forward search** — positive answers with concrete witness paths, on
  every scheme (a semi-decision that is complete whenever the reachable
  set is finite, where saturation also proves negatives);
* **backward coverability** — for node reachability, negative answers are
  exact on *every* scheme and positive answers on wait-free schemes
  (:mod:`repro.analysis.coverability`).

``state_reachable``/``node_reachable`` combine the layers automatically
and raise :class:`~repro.errors.AnalysisBudgetExceeded` instead of
guessing when no layer is conclusive.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from .certificates import AnalysisVerdict, SaturationCertificate, WitnessPath
from .coverability import backward_coverability
from .explore import DEFAULT_MAX_STATES, Explorer


def state_reachable(
    scheme: RPScheme,
    target: HState,
    initial: Optional[HState] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> AnalysisVerdict:
    """Decide whether *target* is reachable from *initial* (exactly).

    Positive verdicts carry a :class:`WitnessPath`; negative verdicts are
    produced by saturation and carry a :class:`SaturationCertificate`.
    """
    explorer = Explorer(scheme, max_states=max_states)
    graph = explorer.explore(initial, stop_when=lambda s: s == target)
    if target in graph:
        return AnalysisVerdict(
            holds=True,
            method="forward-search",
            certificate=WitnessPath(tuple(graph.path_to(target))),
            exact=True,
            details={"explored": len(graph)},
        )
    if graph.complete:
        return AnalysisVerdict(
            holds=False,
            method="saturation",
            certificate=SaturationCertificate(len(graph), graph.num_transitions),
            exact=True,
            details={"explored": len(graph)},
        )
    raise AnalysisBudgetExceeded(
        f"reachability: target not found within {max_states} states and the "
        f"scheme did not saturate",
        explored=len(graph),
    )


def node_reachable(
    scheme: RPScheme,
    node: str,
    initial: Optional[HState] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> AnalysisVerdict:
    """Decide whether some reachable state contains an occurrence of *node*.

    Layered strategy: forward search (positive answers with witnesses and
    saturation-based negatives), then backward coverability of
    ``↑{(node,∅)}`` — whose negative answers are exact on every scheme.
    """
    scheme.node(node)  # validate early
    return covers(
        scheme,
        targets=[HState.leaf(node)],
        predicate=lambda s: s.contains_node(node),
        initial=initial,
        max_states=max_states,
        what=f"node reachability of {node!r}",
    )


def covers(
    scheme: RPScheme,
    targets: Sequence[HState],
    predicate,
    initial: Optional[HState] = None,
    max_states: int = DEFAULT_MAX_STATES,
    what: str = "coverability",
) -> AnalysisVerdict:
    """Shared engine: can a state satisfying the upward-closed *predicate*
    (with coverability basis *targets*) be reached from *initial*?

    *predicate* must characterise ``↑targets`` (the callers guarantee it).
    """
    explorer = Explorer(scheme, max_states=max_states)
    graph = explorer.explore(initial, stop_when=predicate)
    hit = graph.find(predicate)
    if hit is not None:
        return AnalysisVerdict(
            holds=True,
            method="forward-search",
            certificate=WitnessPath(tuple(graph.path_to(hit))),
            exact=True,
            details={"explored": len(graph)},
        )
    if graph.complete:
        return AnalysisVerdict(
            holds=False,
            method="saturation",
            certificate=SaturationCertificate(len(graph), graph.num_transitions),
            exact=True,
            details={"explored": len(graph)},
        )
    backward = backward_coverability(scheme, targets, initial=initial)
    if not backward.holds:
        return backward
    if backward.exact:
        return backward
    raise AnalysisBudgetExceeded(
        f"{what}: forward budget of {max_states} states exhausted and the "
        f"backward answer is only an over-approximation on this scheme "
        f"(wait nodes present)",
        explored=len(graph),
    )
