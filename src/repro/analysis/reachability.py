"""The Reachability and Node Reachability Problems (Theorem 4).

*Reachability*: given ``G`` and states ``σ, σ'``, is there a transition
sequence of ``M_G`` from ``σ`` to ``σ'``?

*Node Reachability*: given ``G``, a node ``q`` and a state ``σ``, can a
state containing an occurrence of ``q`` be reached from ``σ``?

The paper's exact algorithms live in the unpublished [Sch96]; this module
layers the machinery available here (see DESIGN.md):

* **forward search** — positive answers with concrete witness paths, on
  every scheme (a semi-decision that is complete whenever the reachable
  set is finite, where saturation also proves negatives);
* **backward coverability** — for node reachability, negative answers are
  exact on *every* scheme and positive answers on wait-free schemes
  (:mod:`repro.analysis.coverability`).

``state_reachable``/``node_reachable`` combine the layers automatically
and raise :class:`~repro.errors.AnalysisBudgetExceeded` instead of
guessing when no layer is conclusive.

All entry points accept ``session=`` (an
:class:`~repro.analysis.session.AnalysisSession`): the forward search
then runs over the session's shared state graph — scanning what earlier
queries already explored and resuming its frontier instead of restarting
from ``σ0``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from ..robust.governance import governed
from .certificates import AnalysisVerdict, SaturationCertificate, WitnessPath
from .coverability import backward_coverability
from .explore import DEFAULT_MAX_STATES
from .session import AnalysisSession, resolve_session


def state_reachable(
    scheme: RPScheme,
    target: HState,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether *target* is reachable from *initial* (exactly).

    Positive verdicts carry a :class:`WitnessPath`; negative verdicts are
    produced by saturation and carry a :class:`SaturationCertificate`.
    A ``budget=`` (:class:`repro.robust.Budget`) governs the run; under
    ``on_exhaust="partial"`` exhaustion returns a
    :class:`repro.robust.PartialVerdict` instead of raising.
    """
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase("state-reachable", budget=state_budget):
            graph = sess.graph
            if target not in graph and not graph.complete:
                graph = sess.explore(state_budget, stop_when=lambda s: s == target)
            if target in graph:
                return AnalysisVerdict(
                    holds=True,
                    method="forward-search",
                    certificate=WitnessPath(tuple(graph.path_to(target))),
                    exact=True,
                    details={"explored": len(graph)},
                )
            if graph.complete:
                return AnalysisVerdict(
                    holds=False,
                    method="saturation",
                    certificate=SaturationCertificate(
                        len(graph), graph.num_transitions
                    ),
                    exact=True,
                    details={"explored": len(graph)},
                )
            raise AnalysisBudgetExceeded(
                f"reachability: target not found within {state_budget} states "
                f"and the scheme did not saturate",
                explored=len(graph),
            )

    return governed(
        sess, budget, f"state-reachable({target.to_notation()})", body
    )


def node_reachable(
    scheme: RPScheme,
    node: str,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether some reachable state contains an occurrence of *node*.

    Layered strategy: forward search (positive answers with witnesses and
    saturation-based negatives), then backward coverability of
    ``↑{(node,∅)}`` — whose negative answers are exact on every scheme.
    """
    scheme.node(node)  # validate early
    return covers(
        scheme,
        targets=[HState.leaf(node)],
        predicate=lambda s: s.contains_node(node),
        initial=initial,
        max_states=max_states,
        session=session,
        budget=budget,
        what=f"node reachability of {node!r}",
    )


def covers(
    scheme: RPScheme,
    targets: Sequence[HState],
    predicate,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
    what: str = "coverability",
) -> AnalysisVerdict:
    """Shared engine: can a state satisfying the upward-closed *predicate*
    (with coverability basis *targets*) be reached from *initial*?

    *predicate* must characterise ``↑targets`` (the callers guarantee it).
    """
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase("covers", what=what, budget=state_budget):
            graph = sess.graph
            hit = graph.find(predicate)
            if hit is None and not graph.complete and len(graph) < state_budget:
                already = len(graph)
                graph = sess.explore(state_budget, stop_when=predicate)
                for state in graph.states[already:]:
                    if predicate(state):
                        hit = state
                        break
            if hit is not None:
                return AnalysisVerdict(
                    holds=True,
                    method="forward-search",
                    certificate=WitnessPath(tuple(graph.path_to(hit))),
                    exact=True,
                    details={"explored": len(graph)},
                )
            if graph.complete:
                return AnalysisVerdict(
                    holds=False,
                    method="saturation",
                    certificate=SaturationCertificate(
                        len(graph), graph.num_transitions
                    ),
                    exact=True,
                    details={"explored": len(graph)},
                )
            backward = backward_coverability(
                scheme, targets, initial=sess.initial, session=sess
            )
            if not backward.holds:
                return backward
            if backward.exact:
                return backward
            raise AnalysisBudgetExceeded(
                f"{what}: forward budget of {state_budget} states exhausted "
                f"and the backward answer is only an over-approximation on "
                f"this scheme (wait nodes present)",
                explored=len(graph),
            )

    return governed(sess, budget, what, body)
