"""Decision procedures for RP schemes (Section 3 of the paper).

========================  ===============================================
Paper result              Entry point
========================  ===============================================
Theorem 4 (Reachability)  :func:`repro.analysis.state_reachable`
Theorem 4 (Node Reach.)   :func:`repro.analysis.node_reachable`
Theorem 4 (Mutual Excl.)  :func:`repro.analysis.mutually_exclusive`
Theorem 4 (Boundedness)   :func:`repro.analysis.boundedness`
Theorem 5 (Sup-Reach.)    :func:`repro.analysis.sup_reachability`
Theorem 6 (Inevitability) :func:`repro.analysis.inevitability`
Corollary 7 (Halting)     :func:`repro.analysis.halts`
§5.2 (Persistence)        :func:`repro.analysis.persistent`
§5.3 (Write conflicts)    :func:`repro.analysis.write_conflicts`
========================  ===============================================

Every entry point takes the scheme (plus its problem-specific inputs)
followed by keyword-only ``initial=``, ``max_states=`` and ``session=``.
Passing one :class:`AnalysisSession` to several queries shares a single
exploration of ``M_G`` (plus successor caching, hash-consing and
memoized verdicts) between them::

    session = AnalysisSession(scheme)
    node_reachable(scheme, "q5", session=session)   # explores
    boundedness(scheme, session=session)            # reuses the graph
    session.stats.explorations                      # == 1

Without a session, each call creates a throwaway one — the historical
one-exploration-per-call behaviour.
"""

from .boundedness import boundedness
from .certificates import (
    AnalysisVerdict,
    BasisCertificate,
    LassoCertificate,
    PumpCertificate,
    SaturationCertificate,
    WitnessPath,
)
from .coverability import arrangements, backward_coverability, predecessor_basis
from .explore import DEFAULT_MAX_STATES, Explorer, StateGraph
from .inevitability import halting_via_inevitability, inevitability
from .mutex import mutually_exclusive, nodes_never_cooccur, write_conflicts
from .persistence import never_terminates_procedure, persistent
from .reachability import covers, node_reachable, state_reachable
from .sup_reachability import (
    minimal_reachable_states,
    reaches_downward_closed,
    sup_reachability,
)
from .session import (
    AnalysisSession,
    AnalysisStats,
    ProgressEvent,
    resolve_session,
)
from .termination import halts, may_terminate
from .summary import DEFAULT_NORMEDNESS_MAX_STATES, SchemeReport, analyze
from .ctl import CTLChecker, CTLResult, check_ctl
from .normedness import normed, state_is_normed
from .races import RaceReport, VariableRaces, race_report, variable_writers

__all__ = [
    "AnalysisSession",
    "AnalysisStats",
    "ProgressEvent",
    "resolve_session",
    "DEFAULT_NORMEDNESS_MAX_STATES",
    "SchemeReport",
    "analyze",
    "CTLChecker",
    "CTLResult",
    "check_ctl",
    "normed",
    "state_is_normed",
    "RaceReport",
    "VariableRaces",
    "race_report",
    "variable_writers",

    "boundedness",
    "AnalysisVerdict",
    "BasisCertificate",
    "LassoCertificate",
    "PumpCertificate",
    "SaturationCertificate",
    "WitnessPath",
    "arrangements",
    "backward_coverability",
    "predecessor_basis",
    "DEFAULT_MAX_STATES",
    "Explorer",
    "StateGraph",
    "halting_via_inevitability",
    "inevitability",
    "mutually_exclusive",
    "nodes_never_cooccur",
    "write_conflicts",
    "never_terminates_procedure",
    "persistent",
    "covers",
    "node_reachable",
    "state_reachable",
    "minimal_reachable_states",
    "reaches_downward_closed",
    "sup_reachability",
    "halts",
    "may_terminate",
]
