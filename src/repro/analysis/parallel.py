"""Sharded parallel exploration of ``M_G`` (``AnalysisSession(workers=N)``).

Every decision procedure funnels through one BFS over the reachable
fragment of ``M_G``; this module spreads the expensive half of that BFS
— successor computation — across a ``multiprocessing`` worker pool while
keeping the resulting graph **state-for-state identical** to the
sequential exploration.  The design is *window-synchronous*:

1. the coordinator (the session's process) takes a window of frontier
   states, shards them by state-signature hash into chunks, and hands
   chunks to workers — a worker that drains its own shard **steals**
   chunks from the largest remaining shard, so an uneven signature
   distribution cannot idle half the pool;
2. each worker runs its own :class:`~repro.core.semantics.
   MemoizingSemantics` over its own copy of the scheme and returns, per
   chunk, the successor rows plus a batch of **newly announced states**
   (ref-interned: a state crosses the pipe at most once per worker,
   repeats travel as integers);
3. the coordinator owns the global visited store (the session's graph
   index and intern table), deduplicates cross-shard successors as the
   batches arrive, and **applies expansions strictly in frontier
   order** — the same pop/append/budget-check cycle as the sequential
   loop, one whole state at a time.

Step 3 is what buys determinism: scheduling, stealing and message
arrival order only affect *when* a successor row is ready, never the
order it is applied in, so the grown graph (states, discovery order,
transitions) is exactly the sequential one for any worker count.  That
makes verdict parity a construction property rather than a test hope,
and it means the existing ``rpcheck-checkpoint/1`` format round-trips
unchanged: a parallel run checkpoints a clean BFS prefix that a
sequential run resumes, and vice versa.

Budget governance stays at the coordinator: the ambient
:class:`~repro.robust.Budget` is checked between applied expansions (the
sequential contract) and while waiting for workers, so a deadline, state
cap, memory ceiling or cancellation surfaces as the usual
:class:`~repro.errors.BudgetExhausted` with a resumable frontier —
successor rows computed for the abandoned window are discarded (bounded
wasted work, never a corrupted graph).  The memory ceiling samples the
coordinator process only; worker footprints are bounded by their
successor caches.

Workers report their counters through the established registry
``merge()`` contract (docs/observability.md): each result message
carries a delta ``MetricsRegistry.as_dict()`` snapshot that the
coordinator rebuilds via :func:`~repro.obs.registry_from_dict` and folds
into the session registry, so ``parallel.states_expanded{worker=i}``,
worker cache hit rates and per-chunk busy seconds land in the same
artefacts as every other metric.

**Tracing.**  When the session's tracer is on, every window opens a
``parallel.window`` span under ``session.explore`` and each dispatched
chunk carries the window's ``traceparent`` to its worker, which runs a
buffering :class:`~repro.obs.tracer.Tracer` around the expansion (a
``parallel.chunk`` span with per-shard steal/exchange events) and ships
the finished records back with its result.  The coordinator buffers the
shipped records until the window **commits**, then re-bases their span
ids into its own tracer's id space and re-parents them under the window
span — one trace covers coordinator and workers with correct OTLP
parent links, and a window replayed after a worker death traces its
chunks exactly once (the abandoned attempt's payloads are voided with
its rows).  With tracing off the dispatch messages say so and workers
skip every tracing allocation, keeping the <5% overhead bar.

Start method: ``fork`` where available (Linux; ~3ms per worker), else
``spawn``; override with the ``RP_PARALLEL_START`` environment
variable.  Workers import nothing at runtime — everything they need is
imported when this module loads — which keeps ``fork`` safe even when
the pool is spawned from a threaded host like the serve daemon.

**Supervision.**  A worker process dying (OOM kill, crash, operator
mistake) or hanging mid-window does not fail the query.  The
coordinator detects the failure — a liveness check on every wait-loop
tick plus a per-window heartbeat deadline for hung-but-alive workers —
drains the surviving messages of the other workers (announcements
already on the wire register exactly once), respawns the failed worker
and rebuilds its ref table from the coordinator's mirror, then replays
the lost window.  Because expansions are applied strictly in frontier
order, the applied prefix is untouched and the replayed remainder grows
the *identical* graph: recovery is byte-for-byte invisible in states,
verdicts, checkpoints and ``peak_frontier``.  After a bounded respawn
budget (``AnalysisSession(max_worker_restarts=...)``, default
``DEFAULT_MAX_WORKER_RESTARTS``) the session degrades to the sequential
explorer instead — slower, never wrong, never a failed query — and the
downgrade is recorded in metrics (``parallel.degraded``) and the run
ledger.  Every recovery shows up as ``parallel.worker_restarts`` /
``parallel.windows_replayed`` counters and a flight-recorder incident.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import time
from collections import deque
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Dict, List, Optional, Tuple

from ..core.hstate import HState, Signature
from ..core.semantics import MemoizingSemantics, Transition
from ..core.serialize import scheme_from_dict, scheme_to_dict
from ..errors import AnalysisError
from ..obs.metrics import MetricsRegistry, registry_from_dict
from ..obs.recorder import record_incident
from ..obs.sinks import MemorySink
from ..obs.tracer import TraceContext, Tracer, trace_context
from .explore import DEFAULT_MAX_STATES, StateGraph

__all__ = [
    "DEFAULT_CHUNK_STATES",
    "DEFAULT_MAX_WORKER_RESTARTS",
    "DEFAULT_WINDOW_HEARTBEAT",
    "START_METHOD_ENV",
    "WINDOW_CHUNKS_PER_WORKER",
    "WorkerFailure",
    "WorkerPool",
    "default_start_method",
    "explore_parallel",
]

#: Frontier states per work chunk (one message each way per chunk).
DEFAULT_CHUNK_STATES = 32

#: Window size in chunks per worker: large enough that stealing has
#: something to steal and apply overlaps compute, small enough that an
#: abandoned window (budget stop) wastes little work.
WINDOW_CHUNKS_PER_WORKER = 4

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "RP_PARALLEL_START"

#: Chunks a worker may have in flight (double-buffering hides dispatch).
_MAX_INFLIGHT = 2

#: Seconds between budget checks while waiting on worker results.
_WAIT_INTERVAL = 0.05

#: Seconds to wait for a worker to exit cleanly before terminating it.
_JOIN_TIMEOUT = 2.0

#: Worker respawns a session tolerates before degrading to sequential
#: exploration (override per session with ``max_worker_restarts=``).
DEFAULT_MAX_WORKER_RESTARTS = 3

#: Seconds of mid-window silence (no message from any worker while
#: chunks are in flight) before in-flight workers are declared hung and
#: respawned.  Generous on purpose: a real chunk takes milliseconds, so
#: a minute of silence is a wedged process, not a slow one.
DEFAULT_WINDOW_HEARTBEAT = 60.0


class WorkerFailure(AnalysisError):
    """One or more exploration workers died or hung mid-exploration.

    Raised by :meth:`WorkerPool.check_alive` and the explore loop's
    receive/dispatch paths; :func:`explore_parallel` catches it and
    recovers (respawn + window replay) within the session's respawn
    budget, so it only escapes to callers driving the pool directly.
    ``indices`` names the failed workers.
    """

    def __init__(self, message: str, indices) -> None:
        super().__init__(message)
        self.indices: Tuple[int, ...] = tuple(indices)


def default_start_method() -> str:
    """The multiprocessing start method the pool will use.

    ``RP_PARALLEL_START`` wins when set; otherwise ``fork`` where the
    platform offers it (cheap, shares the already-imported interpreter),
    falling back to ``spawn``.
    """
    methods = get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV)
    if override:
        if override not in methods:
            raise AnalysisError(
                f"{START_METHOD_ENV}={override!r} is not a supported start "
                f"method (available: {', '.join(methods)})"
            )
        return override
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# Worker side (runs in the child process)
# ----------------------------------------------------------------------


def _worker_main(connection, scheme_payload: Dict[str, Any], index: int) -> None:
    """One exploration worker: expand chunks until told to stop.

    Protocol (coordinator -> worker)::

        ("expand", round_id, chunk_id, [("s", HState) | ("r", ref), ...],
         trace_info)
        ("seed", [HState, ...])
        ("stop",)

    and back::

        ("result", round_id, chunk_id, rows, announced, metrics_dict,
         trace_payload)
        ("error", round_id, chunk_id, message)

    where ``rows[i]`` lists ``(label, ref, rule, node, path, branch)``
    for the i-th chunk state and ``announced`` carries ``(ref, state)``
    pairs for states this worker ships for the first time — refs are
    allocated densely per worker, so both sides mirror one append-only
    table and every repeat crosses the pipe as a single integer.

    ``trace_info`` is ``None`` when the coordinator's tracer is off
    (the worker then pays nothing for tracing and ships
    ``trace_payload=None``); otherwise it is a dict carrying the
    propagated ``traceparent`` plus this chunk's shard and stolen flag,
    and the worker runs a buffering :class:`~repro.obs.tracer.Tracer`
    around the expansion — a ``parallel.chunk`` span with a per-shard
    ``parallel.exchange`` event — shipping the finished records back as
    ``trace_payload = {"anchor": <epoch - perf_counter>, "records":
    [...]}`` for the coordinator to re-base into its own span-id space.
    """
    import signal

    try:
        # the coordinator owns interruption; workers die via "stop",
        # closed pipes, or their daemon flag
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    scheme = scheme_from_dict(scheme_payload)
    semantics = MemoizingSemantics(scheme)
    label = str(index)
    by_ref: List[HState] = []
    refs: Dict[HState, int] = {}
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            if message[0] == "seed":
                # a respawned worker inherits its predecessor's ref table
                # (the coordinator's mirror), so dispatch keeps sending
                # previously-announced states as bare integers
                by_ref = [semantics.intern(state) for state in message[1]]
                refs = {state: ref for ref, state in enumerate(by_ref)}
                continue
            _op, round_id, chunk_id, items = message[:4]
            trace_info = message[4] if len(message) > 4 else None
            try:
                started = time.perf_counter()
                hits_before = semantics.cache_hits
                misses_before = semantics.cache_misses
                announced: List[Tuple[int, HState]] = []
                rows = []
                fired = 0
                trace_sink = tracer = None
                with contextlib.ExitStack() as stack:
                    if trace_info is not None:
                        trace_sink = MemorySink()
                        tracer = Tracer(trace_sink)
                        stack.enter_context(
                            trace_context(
                                TraceContext.from_traceparent(
                                    trace_info.get("traceparent")
                                )
                            )
                        )
                        chunk_span = stack.enter_context(
                            tracer.span(
                                "parallel.chunk",
                                worker=index,
                                round=round_id,
                                chunk=chunk_id,
                                shard=trace_info.get("shard"),
                                states=len(items),
                                stolen=bool(trace_info.get("stolen")),
                            )
                        )
                    for kind, payload in items:
                        if kind == "r":
                            state = by_ref[payload]
                        else:
                            state = semantics.intern(payload)
                        row = []
                        for transition in semantics.successors(state):
                            target = transition.target
                            ref = refs.get(target)
                            if ref is None:
                                ref = len(by_ref)
                                refs[target] = ref
                                by_ref.append(target)
                                announced.append((ref, target))
                            row.append(
                                (
                                    transition.label,
                                    ref,
                                    transition.rule,
                                    transition.node,
                                    transition.path,
                                    transition.branch,
                                )
                            )
                        fired += len(row)
                        rows.append(row)
                    if trace_info is not None:
                        tracer.event(
                            "parallel.exchange",
                            shard=trace_info.get("shard"),
                            refs=len(announced),
                        )
                        chunk_span.set(announced=len(announced), transitions=fired)
                trace_payload = None
                if trace_sink is not None:
                    trace_payload = {
                        "anchor": time.time() - time.perf_counter(),
                        "records": trace_sink.snapshot(),
                    }
                registry = MetricsRegistry()
                registry.counter(
                    "parallel.states_expanded",
                    "states expanded by sharded workers",
                ).labels(worker=label).inc(len(rows))
                registry.counter(
                    "parallel.transitions",
                    "successor transitions computed by sharded workers",
                ).labels(worker=label).inc(fired)
                registry.counter(
                    "parallel.worker_cache_hits",
                    "worker-local successor-cache hits",
                ).labels(worker=label).inc(semantics.cache_hits - hits_before)
                registry.counter(
                    "parallel.worker_cache_misses",
                    "worker-local successor-cache misses",
                ).labels(worker=label).inc(semantics.cache_misses - misses_before)
                registry.histogram(
                    "parallel.worker_seconds",
                    "per-chunk worker busy time",
                ).labels(worker=label).observe(time.perf_counter() - started)
                connection.send(
                    (
                        "result",
                        round_id,
                        chunk_id,
                        rows,
                        announced,
                        registry.as_dict(),
                        trace_payload,
                    )
                )
            except Exception as error:  # ship the failure, then die
                try:
                    connection.send(
                        (
                            "error",
                            round_id,
                            chunk_id,
                            f"{type(error).__name__}: {error}",
                        )
                    )
                except (OSError, ValueError):
                    pass
                raise
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover - already gone
            pass


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _reintern_signatures(state: HState) -> None:
    """Swap a deserialised state's signatures for the interned instances.

    Unpickled states are value-correct but carry private ``Signature``
    copies; re-interning restores the ``self is other`` fast paths the
    embedding layer leans on, so states adopted from workers behave
    exactly like locally built ones.
    """
    for _node, child in state.items:
        _reintern_signatures(child)
    sig = state._signature
    state._signature = Signature.of(sig.size, sig.height, sig.width, sig.counts)


class _WorkerHandle:
    """Coordinator-side view of one worker process."""

    __slots__ = ("index", "process", "connection", "table")

    def __init__(self, index, process, connection) -> None:
        self.index = index
        self.process = process
        self.connection = connection
        #: Mirror of the worker's announcement table: ref -> canonical
        #: (coordinator-interned) state.
        self.table: List[HState] = []


class WorkerPool:
    """A pool of exploration workers for one scheme.

    Pools are cheap to keep warm (idle workers block in ``recv``) and
    are reused across explorations of the owning session; they are
    **not** thread-safe — the session serializes exploration through
    ``ensure_explored`` already.
    """

    def __init__(
        self,
        scheme,
        size: int,
        *,
        start_method: Optional[str] = None,
        heartbeat: Optional[float] = DEFAULT_WINDOW_HEARTBEAT,
    ) -> None:
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise AnalysisError(f"worker pool size must be a positive int, got {size!r}")
        self.scheme = scheme
        self.size = size
        self.start_method = start_method or default_start_method()
        self.closed = False
        #: Per-window hang deadline (seconds of silence; ``None`` = off).
        self.heartbeat = heartbeat
        #: Chunks executed by a worker outside its own signature shard.
        self.steals = 0
        #: Window-synchronous rounds run through this pool.
        self.rounds = 0
        #: Workers respawned after a death or hang (see :meth:`respawn`).
        self.restarts = 0
        #: Optional :class:`~repro.robust.ProcessFaultPlan` (chaos hook);
        #: consulted once per round by :meth:`inject_process_faults`.
        self.fault_plan = None
        #: SIGKILLs delivered on behalf of :attr:`fault_plan`.
        self.chaos_kills = 0
        self.workers: List[_WorkerHandle] = []
        self._round_seq = itertools.count(1)
        #: canonical state -> (worker index, ref) of its first announcer;
        #: lets chunk dispatch send known states back as bare integers.
        self._origin: Dict[HState, Tuple[int, int]] = {}
        #: signature (interned, identity-keyed) -> shard index.
        self._shards: Dict[Signature, int] = {}
        self._context = get_context(self.start_method)
        self._payload = scheme_to_dict(scheme)
        try:
            for index in range(size):
                process, ours = self._spawn(index)
                self.workers.append(_WorkerHandle(index, process, ours))
        except Exception:
            self.close()
            raise

    def _spawn(self, index: int):
        """Start one worker process; returns ``(process, connection)``."""
        ours, theirs = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(theirs, self._payload, index),
            name=f"rpcheck-explore-{index}",
            daemon=True,
        )
        process.start()
        theirs.close()
        return process, ours

    # ------------------------------------------------------------------

    def shard_of(self, state: HState) -> int:
        """The worker shard owning *state*, by signature hash."""
        sig = state.signature
        shard = self._shards.get(sig)
        if shard is None:
            key = (sig.size, sig.height, sig.width, tuple(sorted(sig.counts.items())))
            shard = hash(key) % self.size
            self._shards[sig] = shard
        return shard

    def adopt(self, state: HState, semantics: MemoizingSemantics) -> HState:
        """The canonical coordinator instance for a worker-shipped state."""
        canonical = semantics.intern(state)
        if canonical is state:
            _reintern_signatures(state)
        return canonical

    def register(self, handle: _WorkerHandle, announced, semantics) -> None:
        """Mirror one result message's state announcements.

        Runs for stale (abandoned-round) messages too — announcement
        tables are append-only and shared across rounds, so every
        message must extend them even when its successor rows (and any
        chunk trace payload: a replayed window re-traces its chunks, so
        the stale spans must be voided with the rows) are discarded.
        """
        table = handle.table
        origin = self._origin
        for ref, state in announced:
            if ref != len(table):
                raise AnalysisError(
                    f"exploration worker {handle.index} announced ref {ref}, "
                    f"expected {len(table)} (protocol corruption)"
                )
            canonical = self.adopt(state, semantics)
            table.append(canonical)
            if canonical not in origin:
                origin[canonical] = (handle.index, ref)

    def drain(self, semantics, registry: Optional[MetricsRegistry] = None) -> int:
        """Consume pending messages from abandoned rounds (keep tables in sync).

        Tolerates dead workers: a worker that died mid-``send`` leaves a
        pipe that polls ready and then raises ``EOFError`` (or a
        truncated-pickle ``OSError``) on ``recv`` — its surviving
        complete messages before the break are still registered, so the
        coordinator's ref-table mirror never desynchronises on the
        respawn path.
        """
        drained = 0
        for handle in self.workers:
            connection = handle.connection
            try:
                while connection.poll():
                    message = connection.recv()
                    if message[0] == "result":
                        self.register(handle, message[4], semantics)
                        if registry is not None and message[5]:
                            registry.merge(registry_from_dict(message[5]))
                    drained += 1
            except (EOFError, OSError):
                continue  # dead worker; survivors' messages already mirrored
        return drained

    def check_alive(self, semantics=None, registry=None) -> None:
        """Raise :class:`WorkerFailure` naming every dead worker.

        When *semantics* is given, surviving result messages are drained
        from **all** workers first (see :meth:`drain`), so in-flight
        progress — states other workers announced while one died — is
        registered exactly once before the recovery path takes over.
        """
        dead = [
            handle
            for handle in self.workers
            if not handle.process.is_alive()
        ]
        if not dead:
            return
        if semantics is not None:
            self.drain(semantics, registry)
        detail = ", ".join(
            f"{handle.index} (exit code {handle.process.exitcode})"
            for handle in dead
        )
        raise WorkerFailure(
            f"exploration worker(s) died: {detail}",
            [handle.index for handle in dead],
        )

    def respawn(self, indices, semantics, registry=None) -> None:
        """Replace the workers at *indices* with fresh processes.

        Surviving messages are drained first, then each replacement is
        seeded with its predecessor's announcement table (the
        coordinator's mirror), so refs the coordinator already knows —
        and will keep sending as bare integers — resolve identically in
        the new process.  A hung-but-alive worker is SIGKILLed before
        its slot is reused.
        """
        self.drain(semantics, registry)
        for index in indices:
            handle = self.workers[index]
            process = handle.process
            if process.is_alive():  # hung, not dead: reap it ourselves
                process.kill()
            process.join(_JOIN_TIMEOUT)
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
            handle.process, handle.connection = self._spawn(index)
            if handle.table:
                handle.connection.send(("seed", list(handle.table)))
            self.restarts += 1

    def inject_process_faults(self) -> Tuple[int, ...]:
        """SIGKILL this round's victims per :attr:`fault_plan` (chaos hook).

        Returns the indices killed.  No-op without a plan.  Victims are
        killed *before* dispatch so the window exercises the real
        detect/drain/respawn/replay path; the kill is waited on so the
        liveness check cannot race a zombie that still reports alive.
        """
        plan = self.fault_plan
        if plan is None:
            return ()
        remaining = plan.max_kills - self.chaos_kills
        if remaining <= 0:
            return ()
        victims = plan.victims(self.rounds, self.size)[:remaining]
        for index in victims:
            process = self.workers[index].process
            if process.is_alive():
                process.kill()
                process.join(_JOIN_TIMEOUT)
                self.chaos_kills += 1
        return victims

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop and reap every worker (idempotent, bounded).

        Escalation ladder per worker: cooperative ``("stop",)`` →
        ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL), each given
        ``_JOIN_TIMEOUT`` seconds — so shutdown is bounded even with a
        wedged (e.g. SIGSTOPped) worker that ignores SIGTERM.
        Connections are closed unconditionally.
        """
        if self.closed:
            return
        self.closed = True
        for handle in self.workers:
            try:
                handle.connection.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for handle in self.workers:
            try:
                handle.process.join(_JOIN_TIMEOUT)
                if handle.process.is_alive():  # pragma: no cover - stuck worker
                    handle.process.terminate()
                    handle.process.join(_JOIN_TIMEOUT)
                if handle.process.is_alive():  # pragma: no cover - wedged worker
                    handle.process.kill()
                    handle.process.join(_JOIN_TIMEOUT)
            finally:
                try:
                    handle.connection.close()
                except OSError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.size} workers"
        return f"WorkerPool({self.scheme.name!r}, {state}, {self.start_method})"


# ----------------------------------------------------------------------
# The parallel explore loop
# ----------------------------------------------------------------------


def _flush_window_trace(tracer, window_span, batches, coord_anchor) -> None:
    """Re-base worker chunk records into the coordinator's trace.

    Worker tracers allocate span ids from 1 in their own processes, so
    shipped records cannot be emitted as-is: each batch's span ids are
    remapped onto a freshly reserved block of the coordinator tracer's
    id space (:meth:`~repro.obs.tracer.Tracer.reserve_ids`), in-batch
    ``parent`` links and event ``span`` references are rewritten through
    the same mapping, batch roots are re-parented under the enclosing
    ``parallel.window`` span, and every record adopts the window's
    :class:`~repro.obs.tracer.TraceContext` — so one trace spans
    coordinator and workers with consistent OTLP ids.  Worker clocks are
    aligned by shifting ``start``/``time`` by the difference of the two
    processes' epoch anchors.

    Called only after a window *commits*: batches from a window
    abandoned by a worker failure are dropped with the window's rows,
    which is what makes replayed windows trace exactly once.
    """
    trace = window_span.trace
    sink = tracer.sink
    for batch in batches:
        records = batch.get("records") or []
        shift = float(batch.get("anchor", coord_anchor)) - coord_anchor
        span_records = [r for r in records if r.get("type") == "span"]
        base = tracer.reserve_ids(len(span_records))
        mapping = {}
        for offset, record in enumerate(span_records):
            mapping[record.get("id")] = base + offset
        for record in records:
            record = dict(record)
            kind = record.get("type")
            if kind == "span":
                record["id"] = mapping[record["id"]]
                parent = record.get("parent")
                record["parent"] = (
                    mapping.get(parent, window_span.span_id)
                    if parent is not None
                    else window_span.span_id
                )
                record["start"] = float(record.get("start") or 0.0) + shift
                record.pop("remote_parent", None)
                record["trace"] = trace.trace_id
                record["span_base"] = trace.span_base
            elif kind == "event":
                record["span"] = mapping.get(
                    record.get("span"), window_span.span_id
                )
                record["time"] = float(record.get("time") or 0.0) + shift
            else:
                continue
            sink.emit(record)


def _chunk_wall(batch) -> Tuple[float, Optional[int], Optional[int]]:
    """(wall seconds, worker, shard) of a shipped chunk's root span."""
    for record in batch.get("records") or ():
        if record.get("type") == "span" and record.get("name") == "parallel.chunk":
            attrs = record.get("attrs") or {}
            wall = record.get("wall")
            return (
                float(wall) if isinstance(wall, (int, float)) else 0.0,
                attrs.get("worker"),
                attrs.get("shard"),
            )
    return 0.0, None, None


def explore_parallel(session, max_states=None, *, stop_when=None) -> StateGraph:
    """Grow *session*'s shared graph with its worker pool.

    Drop-in replacement for the sequential
    :meth:`~repro.analysis.AnalysisSession.explore` body: same budget
    resolution, same overshoot contract, same stop-when semantics, same
    stats/span bookkeeping — and, by the window-synchronous design, the
    same graph, state for state.  Called by the session when
    ``workers > 1``; not part of the public API.
    """
    budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    ambient = session.budget
    if ambient is not None:
        budget = ambient.effective_max_states(budget)
    graph = session.graph
    if not session._queue:
        return graph
    pool = session._ensure_pool()
    started = time.perf_counter()
    expanded_before = session._expanded
    queue = session._queue
    semantics = session.semantics
    index = graph.index
    stats = session.stats
    frontier_gauge = session._frontier_gauge
    metrics = session.metrics
    metrics.gauge(
        "parallel.workers", "worker processes of the sharded explorer"
    ).set(pool.size)
    rounds_counter = metrics.counter(
        "parallel.rounds", "window-synchronous exploration rounds"
    )
    steals_counter = metrics.counter(
        "parallel.steals", "chunks executed outside their signature shard"
    )
    metrics.counter(
        "parallel.worker_restarts",
        "exploration workers respawned after a death or hang",
    )
    metrics.counter(
        "parallel.windows_replayed",
        "frontier windows replayed after a worker failure",
    )
    stopped = False
    next_progress = session._expanded + session._progress_interval
    window_cap = DEFAULT_CHUNK_STATES * pool.size * WINDOW_CHUNKS_PER_WORKER
    recover: Optional[WorkerFailure] = None
    tracer = session.tracer
    tracing = tracer.enabled
    coord_anchor = time.time() - time.perf_counter()
    try:
        with tracer.span(
            "session.explore",
            budget=budget,
            resumed=expanded_before > 0,
            workers=pool.size,
        ) as span:
            while queue and not stopped and len(graph.states) < budget:
                if ambient is not None:
                    ambient.check(
                        states=len(graph.states),
                        frontier=len(queue),
                        expanded=session._expanded,
                    )
                pool.drain(semantics, metrics)
                pool.check_alive(semantics, metrics)
                round_id = next(pool._round_seq)
                pool.rounds += 1
                rounds_counter.inc()
                if pool.inject_process_faults():
                    pool.check_alive(semantics, metrics)
                # respawns swap pipes out, so the wait set is per-round
                connections = [handle.connection for handle in pool.workers]
                by_connection = {
                    handle.connection: handle for handle in pool.workers
                }
                window = list(itertools.islice(queue, min(len(queue), window_cap)))

                # shard by signature, then cut shards into chunks
                shards: List[List[int]] = [[] for _ in range(pool.size)]
                for position, state in enumerate(window):
                    shards[pool.shard_of(state)].append(position)
                pending: List[deque] = []
                total_chunks = 0
                for shard in shards:
                    chunks = deque(
                        shard[cut : cut + DEFAULT_CHUNK_STATES]
                        for cut in range(0, len(shard), DEFAULT_CHUNK_STATES)
                    )
                    total_chunks += len(chunks)
                    pending.append(chunks)

                steals_before = pool.steals
                apply_seconds = 0.0
                #: chunk trace payloads buffered until the window commits
                #: (a replayed window must trace its chunks exactly once,
                #: so nothing is emitted while a worker could still die)
                span_batches: List[Dict[str, Any]] = []
                slowest: Tuple[float, Any, Any] = (0.0, None, None)
                with tracer.span(
                    "parallel.window",
                    round=round_id,
                    window=len(window),
                    chunks=total_chunks,
                ) as window_span:
                    wire = (
                        window_span.trace.child(
                            window_span.span_id
                        ).to_traceparent()
                        if tracing
                        else None
                    )
                    chunk_seq = itertools.count()
                    chunk_positions: Dict[int, List[int]] = {}
                    inflight = [0] * pool.size
                    results: List[Optional[Tuple[List[HState], list]]] = [None] * len(window)
                    origin = pool._origin

                    def dispatch(worker: int) -> bool:
                        """Hand one chunk to *worker* (own shard, else steal)."""
                        source = worker
                        if not pending[source]:
                            candidates = [i for i in range(pool.size) if pending[i]]
                            if not candidates:
                                return False
                            source = max(candidates, key=lambda i: len(pending[i]))
                            pool.steals += 1
                            steals_counter.inc()
                            tracer.event(
                                "parallel.steal", shard=source, worker=worker
                            )
                        positions = pending[source].popleft()
                        payload = []
                        for position in positions:
                            state = window[position]
                            known = origin.get(state)
                            if known is not None and known[0] == worker:
                                payload.append(("r", known[1]))
                            else:
                                payload.append(("s", state))
                        chunk_id = next(chunk_seq)
                        chunk_positions[chunk_id] = positions
                        trace_info = (
                            {
                                "traceparent": wire,
                                "shard": source,
                                "stolen": source != worker,
                            }
                            if wire is not None
                            else None
                        )
                        try:
                            pool.workers[worker].connection.send(
                                ("expand", round_id, chunk_id, payload, trace_info)
                            )
                        except (OSError, ValueError) as exc:
                            raise WorkerFailure(
                                f"exploration worker {worker} unreachable at "
                                f"dispatch: {exc}",
                                [worker],
                            )
                        inflight[worker] += 1
                        return True

                    for worker in range(pool.size):
                        while inflight[worker] < _MAX_INFLIGHT and dispatch(worker):
                            pass

                    next_apply = 0
                    completed = 0
                    aborted = False
                    last_message = time.monotonic()
                    while completed < total_chunks and not aborted:
                        ready = _wait_ready(connections, _WAIT_INTERVAL)
                        if not ready:
                            # nothing arrived: keep the budget honest and
                            # notice dead or hung workers instead of hanging
                            if ambient is not None:
                                ambient.check(
                                    states=len(graph.states),
                                    frontier=len(queue),
                                    expanded=session._expanded,
                                )
                            pool.check_alive(semantics, metrics)
                            if (
                                pool.heartbeat is not None
                                and time.monotonic() - last_message > pool.heartbeat
                            ):
                                hung = [
                                    i for i in range(pool.size) if inflight[i] > 0
                                ]
                                if hung:
                                    raise WorkerFailure(
                                        f"exploration worker(s) {hung} silent "
                                        f"past the {pool.heartbeat:g}s window "
                                        f"heartbeat",
                                        hung,
                                    )
                            continue
                        last_message = time.monotonic()
                        for connection in ready:
                            handle = by_connection[connection]
                            try:
                                message = connection.recv()
                            except (EOFError, OSError):
                                raise WorkerFailure(
                                    f"exploration worker {handle.index} exited "
                                    f"mid-round",
                                    [handle.index],
                                )
                            if message[0] == "error":
                                raise AnalysisError(
                                    f"exploration worker {handle.index} failed: "
                                    f"{message[3]}"
                                )
                            (
                                _op,
                                rid,
                                chunk_id,
                                rows,
                                announced,
                                worker_metrics,
                                chunk_trace,
                            ) = message
                            pool.register(handle, announced, semantics)
                            if worker_metrics:
                                metrics.merge(registry_from_dict(worker_metrics))
                            if rid != round_id:
                                continue  # abandoned round: rows (and spans) are void
                            inflight[handle.index] -= 1
                            completed += 1
                            if chunk_trace is not None:
                                span_batches.append(chunk_trace)
                                wall, c_worker, c_shard = _chunk_wall(chunk_trace)
                                if wall > slowest[0]:
                                    slowest = (wall, c_worker, c_shard)
                            for position, row in zip(
                                chunk_positions.pop(chunk_id), rows
                            ):
                                results[position] = (handle.table, row)
                            if not aborted and not stopped:
                                while (
                                    inflight[handle.index] < _MAX_INFLIGHT
                                    and dispatch(handle.index)
                                ):
                                    pass

                        # apply every ready expansion, strictly in frontier
                        # order — this is the sequential loop, verbatim
                        apply_started = time.perf_counter()
                        while next_apply < len(window) and results[next_apply] is not None:
                            if stopped or len(graph.states) >= budget:
                                aborted = True
                                break
                            if ambient is not None:
                                ambient.check(
                                    states=len(graph.states),
                                    frontier=len(queue),
                                    expanded=session._expanded,
                                )
                            table, row = results[next_apply]
                            state = window[next_apply]
                            popped = queue.popleft()
                            if popped is not state:  # pragma: no cover - invariant
                                raise AnalysisError(
                                    "parallel frontier desynchronised from the "
                                    "shared graph (coordinator bug)"
                                )
                            out = graph.edges[index[state]]
                            cached: List[Transition] = []
                            for label, ref, rule, node, path, branch in row:
                                target = table[ref]
                                transition = Transition(
                                    state, label, target, rule, node, path, branch
                                )
                                out.append(transition)
                                cached.append(transition)
                                stats.transitions_fired += 1
                                if target not in index:
                                    graph._add_state(target, transition)
                                    queue.append(target)
                                    if (
                                        stop_when is not None
                                        and not stopped
                                        and stop_when(target)
                                    ):
                                        stopped = True
                            # adopt the rows into the coordinator's successor
                            # cache so post-exploration queries replay them
                            if state in semantics._successors:
                                semantics.cache_hits += 1
                            else:
                                semantics._successors[state] = cached
                                semantics.cache_misses += 1
                            session._expanded += 1
                            frontier_gauge.set(len(queue))
                            if session._expanded >= next_progress:
                                next_progress += session._progress_interval
                                session._sample_progress(started)
                            next_apply += 1
                        apply_seconds += time.perf_counter() - apply_started

                    window_span.set(
                        steals=pool.steals - steals_before,
                        apply_seconds=apply_seconds,
                        applied=next_apply,
                        slowest_chunk_seconds=slowest[0],
                        slowest_worker=slowest[1],
                        slowest_shard=slowest[2],
                    )
                # the window committed: its chunk spans are final — re-base
                # them into the coordinator's id space under the window span
                if tracing and span_batches:
                    _flush_window_trace(
                        tracer, window_span, span_batches, coord_anchor
                    )
            span.set(
                states=len(graph.states),
                expanded=session._expanded - expanded_before,
                stopped=stopped,
                worker_restarts=session._worker_restarts,
            )
    except WorkerFailure as failure:
        recover = failure
    finally:
        graph.complete = not queue
        graph.unexpanded = list(queue)
        if expanded_before == 0 and session._expanded > 0:
            stats.explorations += 1
        stats.explore_seconds += time.perf_counter() - started
        session._sync_stats()
    if recover is not None:
        # recovery re-enters explore and opens a new root span; chain it
        # into this exploration's trace (parented under the failed
        # explore span) so a replayed run still exports as ONE trace
        resume_trace = None
        trace_obj = getattr(span, "trace", None)
        if trace_obj is not None:
            resume_trace = trace_obj.child(span.span_id)
        return _recover(
            session,
            pool,
            recover,
            max_states,
            stop_when=stop_when,
            resume_trace=resume_trace,
        )
    return graph


def _recover(session, pool, failure, max_states, *, stop_when, resume_trace=None):
    """Respawn *failure*'s workers and replay, or degrade to sequential.

    The coordinator applies expansions strictly in frontier order, so at
    the moment of failure the applied prefix of the window has already
    left the queue and the unapplied suffix is still on it — respawning
    the dead workers (seeded with the coordinator's ref-table mirror)
    and re-entering the explore loop re-windows exactly the lost work.
    Recovery is therefore byte-identical to an undisturbed run.

    Once the respawn budget is spent, the session finishes the query
    **sequentially** on the same frontier instead of failing it; the
    downgrade is visible in ``parallel.degraded``, the flight recorder,
    and the run ledger's ``extra.worker_restarts``.
    """
    metrics = session.metrics
    semantics = session.semantics
    indices = sorted(set(failure.indices))
    restart_limit = session.max_worker_restarts
    if restart_limit is None:
        restart_limit = DEFAULT_MAX_WORKER_RESTARTS
    if session._worker_restarts + len(indices) > restart_limit:
        record_incident(
            session,
            failure,
            reason="parallel exploration degraded to sequential",
            context={
                "workers": indices,
                "restarts": session._worker_restarts,
                "restart_limit": restart_limit,
            },
        )
        metrics.counter(
            "parallel.degraded",
            "sessions degraded to sequential exploration after exhausting "
            "the worker-respawn budget",
        ).inc()
        session.close()  # reap the surviving workers
        session._parallel_degraded = True
        with trace_context(resume_trace):
            return session.explore(max_states, stop_when=stop_when)
    record_incident(
        session,
        failure,
        reason="exploration worker failure",
        context={
            "workers": indices,
            "round": pool.rounds,
            "restarts_before": session._worker_restarts,
        },
    )
    pool.respawn(indices, semantics, metrics)
    session._worker_restarts += len(indices)
    metrics.counter(
        "parallel.worker_restarts",
        "exploration workers respawned after a death or hang",
    ).inc(len(indices))
    metrics.counter(
        "parallel.windows_replayed",
        "frontier windows replayed after a worker failure",
    ).inc()
    with trace_context(resume_trace):
        return explore_parallel(session, max_states, stop_when=stop_when)
