"""The Boundedness Problem (Theorem 4, last item).

*Input:* a scheme ``G`` and a state ``σ ∈ M(G)``.
*Output:* true iff ``Reach(σ)`` is finite.

The paper's proof of Proposition 16 describes how unboundedness always
shows up as one of two pump shapes along a run — sibling growth
(``C[q,ω] →* C[q, ω+ω']``) or depth growth (``C[q,ω] →* C[ω'[q,ω]]``) —
both of which are instances of a *strict self-covering*: a run
``σ_k →* σ_l`` with ``σ_k ≺ σ_l`` (strict embedding).  The procedure here
is the Karp–Miller-style forward search for such self-coverings, combined
with exhaustive saturation:

* **bounded** verdicts come from saturation: the whole of ``Reach(σ)`` was
  enumerated (always a proof);
* **unbounded** verdicts come from a strict self-covering on a search path.
  For *wait-free* schemes this is a proof: plain embedding is strongly
  compatible with the transition relation (the extra invocations are
  inert), so the covering run can be iterated forever, producing ever
  larger states.  With ``wait`` nodes extra invocations can block a wait,
  so the certificate is additionally *verified by replay*: the pump's
  firing-descriptor sequence is re-fired from the covering state the
  requested number of times, demanding strictly growing results each time.
  Replay-verified verdicts are flagged ``exact=False`` (see DESIGN.md for
  the substitution note — the paper's exact algorithm is in the
  unpublished [Sch96]).

If neither saturation nor a self-covering occurs within the state budget,
:class:`~repro.errors.AnalysisBudgetExceeded` is raised rather than
guessing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.embedding import EmbeddingIndex
from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics, Transition
from ..errors import AnalysisBudgetExceeded
from ..robust.governance import governed
from .certificates import AnalysisVerdict, PumpCertificate, SaturationCertificate
from .explore import DEFAULT_MAX_STATES
from .session import AnalysisSession, resolve_session


def boundedness(
    scheme: RPScheme,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    replays: Optional[int] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether ``Reach(initial)`` is finite.

    Returns a verdict whose certificate is a
    :class:`~repro.analysis.certificates.SaturationCertificate` (bounded)
    or a :class:`~repro.analysis.certificates.PumpCertificate` (unbounded).

    The BFS-with-self-covering-checks runs over the session's shared
    graph: states already explored by earlier queries are scanned for
    pumps without re-exploration, growth resumes from the saved frontier,
    and conclusive verdicts are memoized on the session (a saturation or
    pump proof is budget-independent).
    """
    state_budget = max_states if max_states is not None else DEFAULT_MAX_STATES
    replays = 2 if replays is None else replays
    sess = resolve_session(scheme, session, initial)

    def body() -> AnalysisVerdict:
        with sess.phase(
            "boundedness", budget=state_budget, replays=replays
        ) as span:
            verdict = _session_boundedness(sess, state_budget, replays)
            span.set(holds=verdict.holds, method=verdict.method)
            return verdict

    return governed(sess, budget, "boundedness", body)


def _session_boundedness(
    sess: AnalysisSession, budget: int, replays: int
) -> AnalysisVerdict:
    cached = sess.memo.get(("boundedness", replays))
    if cached is not None:
        return cached
    graph = sess.graph
    semantics = sess.semantics
    found: List[PumpCertificate] = []

    def check(state: HState) -> bool:
        """Self-covering check for a freshly discovered *state*."""
        via = graph.parent[state]
        if via is None:
            return False
        pump = _covering_ancestor(graph.parent, via, sess.embedding_index)
        if pump is None:
            return False
        with sess.tracer.span(
            "boundedness.certificate", pump_length=len(pump)
        ) as span:
            certificate = _certify_pump(
                sess.scheme,
                semantics,
                graph.parent,
                pump,
                replays,
                sess.embedding_index,
            )
            span.set(certified=certificate is not None)
        if certificate is None:
            return False
        found.append(certificate)
        return True

    # scan states discovered by earlier queries (BFS discovery order, so
    # the first certified pump matches what a fresh search would return),
    # resuming where the last inconclusive boundedness call left off
    scan_key = ("boundedness-scanned", replays)
    scanned = sess.memo.get(scan_key, 0)
    with sess.tracer.span("boundedness.scan", resume_from=scanned) as span:
        for state in graph.states[scanned:]:
            scanned += 1
            if check(state):
                break
        else:
            if not graph.complete:
                graph = sess.explore(budget, stop_when=check)
                scanned = len(graph.states)
        span.set(scanned=scanned, pumps=len(found))
    if found:
        verdict = AnalysisVerdict(
            holds=False,
            method="self-covering",
            certificate=found[0],
            exact=found[0].proof,
            details={"explored": len(graph)},
        )
        sess.memo[("boundedness", replays)] = verdict
        return verdict
    if graph.complete:
        verdict = AnalysisVerdict(
            holds=True,
            method="saturation",
            certificate=SaturationCertificate(
                states=len(graph), transitions=graph.num_transitions
            ),
            exact=True,
            details={"explored": len(graph)},
        )
        sess.memo[("boundedness", replays)] = verdict
        return verdict
    sess.memo[scan_key] = scanned
    raise AnalysisBudgetExceeded(
        f"boundedness: no saturation and no verifiable self-covering "
        f"within {budget} states",
        explored=len(graph),
    )


def _covering_ancestor(
    parent: dict, last: Transition, index: Optional[EmbeddingIndex] = None
) -> Optional[List[Transition]]:
    """The pump segment ending in *last* whose start is strictly covered.

    Walks the BFS-tree ancestors of ``last.target``; returns the transition
    segment from the covered ancestor to ``last.target`` when one strictly
    embeds into it.  Embedding tests go through *index* (the session's
    memoised :class:`~repro.core.embedding.EmbeddingIndex`) when given.
    """
    if index is None:
        index = EmbeddingIndex()
    target = last.target
    segment: List[Transition] = [last]
    via = parent[last.source]
    current = last.source
    while True:
        if current.size < target.size and index.strictly_embeds(current, target):
            segment.reverse()
            return segment
        if via is None:
            return None
        segment.append(via)
        current = via.source
        via = parent[current]


def _certify_pump(
    scheme: RPScheme,
    semantics: AbstractSemantics,
    parent: dict,
    pump: List[Transition],
    replays: int,
    index: Optional[EmbeddingIndex] = None,
) -> Optional[PumpCertificate]:
    """Build (and for wait-bearing schemes, replay-verify) a pump certificate."""
    base = pump[0].source
    pumped = pump[-1].target
    prefix: List[Transition] = []
    via = parent[base]
    current = base
    while via is not None:
        prefix.append(via)
        current = via.source
        via = parent[current]
    prefix.reverse()
    if scheme.is_wait_free:
        return PumpCertificate(
            prefix=tuple(prefix),
            pump=tuple(pump),
            base=base,
            pumped=pumped,
            replays=0,
            proof=True,
        )
    descriptors = [t.descriptor for t in pump]
    state = pumped
    for _ in range(replays):
        trace = _replay_growing(semantics, state, descriptors, index)
        if trace is None:
            return None
        state = trace[-1].target
    return PumpCertificate(
        prefix=tuple(prefix),
        pump=tuple(pump),
        base=base,
        pumped=pumped,
        replays=replays,
        proof=False,
    )


def _replay_growing(
    semantics: AbstractSemantics,
    state: HState,
    descriptors,
    index: Optional[EmbeddingIndex] = None,
) -> Optional[List[Transition]]:
    """Re-fire *descriptors* from *state* demanding a strictly bigger result."""
    if index is None:
        index = EmbeddingIndex()
    trace = semantics.replay(state, descriptors)
    if trace is None:
        return None
    final = trace[-1].target
    if final.size <= state.size or not index.strictly_embeds(state, final):
        return None
    return trace
