"""The Boundedness Problem (Theorem 4, last item).

*Input:* a scheme ``G`` and a state ``σ ∈ M(G)``.
*Output:* true iff ``Reach(σ)`` is finite.

The paper's proof of Proposition 16 describes how unboundedness always
shows up as one of two pump shapes along a run — sibling growth
(``C[q,ω] →* C[q, ω+ω']``) or depth growth (``C[q,ω] →* C[ω'[q,ω]]``) —
both of which are instances of a *strict self-covering*: a run
``σ_k →* σ_l`` with ``σ_k ≺ σ_l`` (strict embedding).  The procedure here
is the Karp–Miller-style forward search for such self-coverings, combined
with exhaustive saturation:

* **bounded** verdicts come from saturation: the whole of ``Reach(σ)`` was
  enumerated (always a proof);
* **unbounded** verdicts come from a strict self-covering on a search path.
  For *wait-free* schemes this is a proof: plain embedding is strongly
  compatible with the transition relation (the extra invocations are
  inert), so the covering run can be iterated forever, producing ever
  larger states.  With ``wait`` nodes extra invocations can block a wait,
  so the certificate is additionally *verified by replay*: the pump's
  firing-descriptor sequence is re-fired from the covering state the
  requested number of times, demanding strictly growing results each time.
  Replay-verified verdicts are flagged ``exact=False`` (see DESIGN.md for
  the substitution note — the paper's exact algorithm is in the
  unpublished [Sch96]).

If neither saturation nor a self-covering occurs within the state budget,
:class:`~repro.errors.AnalysisBudgetExceeded` is raised rather than
guessing.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..core.embedding import strictly_embeds
from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics, Transition
from ..errors import AnalysisBudgetExceeded
from .certificates import AnalysisVerdict, PumpCertificate, SaturationCertificate
from .explore import DEFAULT_MAX_STATES


def boundedness(
    scheme: RPScheme,
    initial: Optional[HState] = None,
    max_states: int = DEFAULT_MAX_STATES,
    replays: int = 2,
) -> AnalysisVerdict:
    """Decide whether ``Reach(initial)`` is finite.

    Returns a verdict whose certificate is a
    :class:`~repro.analysis.certificates.SaturationCertificate` (bounded)
    or a :class:`~repro.analysis.certificates.PumpCertificate` (unbounded).
    """
    semantics = AbstractSemantics(scheme)
    start = initial if initial is not None else semantics.initial_state
    # BFS with parent pointers; ancestors along the BFS tree are checked
    # for strict self-covering.
    parent: dict = {start: None}
    queue: deque = deque([start])
    transitions_seen = 0
    while queue:
        state = queue.popleft()
        for transition in semantics.successors(state):
            transitions_seen += 1
            target = transition.target
            if target in parent:
                continue
            parent[target] = transition
            pump = _covering_ancestor(parent, transition)
            if pump is not None:
                certificate = _certify_pump(scheme, semantics, parent, pump, replays)
                if certificate is not None:
                    return AnalysisVerdict(
                        holds=False,
                        method="self-covering",
                        certificate=certificate,
                        exact=certificate.proof,
                        details={"explored": len(parent)},
                    )
            if len(parent) >= max_states:
                raise AnalysisBudgetExceeded(
                    f"boundedness: no saturation and no verifiable self-covering "
                    f"within {max_states} states",
                    explored=len(parent),
                )
            queue.append(target)
    return AnalysisVerdict(
        holds=True,
        method="saturation",
        certificate=SaturationCertificate(
            states=len(parent), transitions=transitions_seen
        ),
        exact=True,
        details={"explored": len(parent)},
    )


def _covering_ancestor(parent: dict, last: Transition) -> Optional[List[Transition]]:
    """The pump segment ending in *last* whose start is strictly covered.

    Walks the BFS-tree ancestors of ``last.target``; returns the transition
    segment from the covered ancestor to ``last.target`` when one strictly
    embeds into it.
    """
    target = last.target
    segment: List[Transition] = [last]
    via = parent[last.source]
    current = last.source
    while True:
        if current.size < target.size and strictly_embeds(current, target):
            segment.reverse()
            return segment
        if via is None:
            return None
        segment.append(via)
        current = via.source
        via = parent[current]


def _certify_pump(
    scheme: RPScheme,
    semantics: AbstractSemantics,
    parent: dict,
    pump: List[Transition],
    replays: int,
) -> Optional[PumpCertificate]:
    """Build (and for wait-bearing schemes, replay-verify) a pump certificate."""
    base = pump[0].source
    pumped = pump[-1].target
    prefix: List[Transition] = []
    via = parent[base]
    current = base
    while via is not None:
        prefix.append(via)
        current = via.source
        via = parent[current]
    prefix.reverse()
    if scheme.is_wait_free:
        return PumpCertificate(
            prefix=tuple(prefix),
            pump=tuple(pump),
            base=base,
            pumped=pumped,
            replays=0,
            proof=True,
        )
    descriptors = [t.descriptor for t in pump]
    state = pumped
    for _ in range(replays):
        trace = _replay_growing(semantics, state, descriptors)
        if trace is None:
            return None
        state = trace[-1].target
    return PumpCertificate(
        prefix=tuple(prefix),
        pump=tuple(pump),
        base=base,
        pumped=pumped,
        replays=replays,
        proof=False,
    )


def _replay_growing(
    semantics: AbstractSemantics, state: HState, descriptors
) -> Optional[List[Transition]]:
    """Re-fire *descriptors* from *state* demanding a strictly bigger result."""
    trace = semantics.replay(state, descriptors)
    if trace is None:
        return None
    final = trace[-1].target
    if final.size <= state.size or not strictly_embeds(state, final):
        return None
    return trace
