"""Verdicts and certificates for the analysis procedures.

Every decision procedure in :mod:`repro.analysis` returns an
:class:`AnalysisVerdict` carrying, besides the boolean answer, *evidence*
that the test-suite re-checks independently against the raw semantics:

* :class:`WitnessPath` — a concrete transition sequence (reachability,
  mutual-exclusion violations, ...);
* :class:`PumpCertificate` — a self-covering run plus its verified replays
  (unboundedness);
* :class:`SaturationCertificate` — the exhaustively explored state space
  (boundedness, non-reachability, exclusion, halting);
* :class:`LassoCertificate` — a cycle reachable from the initial state
  (non-termination, inevitability violations);
* :class:`BasisCertificate` — a finite basis of minimal reachable states
  (sup-reachability, persistence).

``exact`` records whether the verdict is a *proof* under the documented
completeness envelope, or a replay-verified semi-decision (only
unboundedness of schemes with ``wait`` nodes falls in the second class —
see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.hstate import HState
from ..core.semantics import Descriptor, Transition


@dataclass(frozen=True)
class WitnessPath:
    """A concrete run ``initial →* final`` as a transition list."""

    transitions: Tuple[Transition, ...]

    @property
    def initial(self) -> HState:
        return self.transitions[0].source if self.transitions else None  # type: ignore

    @property
    def final(self) -> HState:
        return self.transitions[-1].target if self.transitions else None  # type: ignore

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(t.label for t in self.transitions)

    def __len__(self) -> int:
        return len(self.transitions)


@dataclass(frozen=True)
class PumpCertificate:
    """Evidence of unboundedness: a strictly self-covering run.

    ``prefix`` drives the initial state to ``base``; ``pump`` drives
    ``base`` to ``pumped`` with ``base ≺ pumped`` (strict embedding).  For
    wait-free schemes strict self-covering is a proof by strong
    compatibility; otherwise ``replays`` records how many times the pump
    descriptor sequence was re-fired with strictly growing results.
    """

    prefix: Tuple[Transition, ...]
    pump: Tuple[Transition, ...]
    base: HState
    pumped: HState
    replays: int
    proof: bool

    @property
    def pump_descriptors(self) -> Tuple[Descriptor, ...]:
        return tuple(t.descriptor for t in self.pump)


@dataclass(frozen=True)
class SaturationCertificate:
    """Evidence by exhaustion: the full finite reachable state space."""

    states: int
    transitions: int


@dataclass(frozen=True)
class LassoCertificate:
    """An infinite run: a stem to ``loop_state`` plus a cycle back to it."""

    stem: Tuple[Transition, ...]
    loop: Tuple[Transition, ...]

    @property
    def loop_state(self) -> HState:
        return self.loop[0].source


@dataclass(frozen=True)
class BasisCertificate:
    """A finite basis (antichain of minimal reachable states)."""

    basis: Tuple[HState, ...]
    ordering: str = "⪯"


@dataclass(frozen=True)
class AnalysisVerdict:
    """The outcome of a decision procedure.

    ``holds`` answers the question as posed by the procedure's docstring;
    ``exact`` is ``True`` when the verdict is a proof; ``certificate``
    carries re-checkable evidence; ``method`` names the algorithm that
    produced the verdict; ``details`` holds free-form diagnostics
    (state counts, iteration counts...).
    """

    holds: bool
    method: str
    certificate: Optional[object] = None
    exact: bool = True
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds
