"""The Mutual Exclusion Problem (Theorem 4, third item).

*Input:* a scheme ``G``, two nodes ``q, q'`` and a state ``σ``.
*Output:* true iff from ``σ`` we **never** reach a state where both ``q``
and ``q'`` occur.

§5.3 motivates the problem: listing the nodes where a given global
variable is assigned and checking they cannot occur simultaneously proves
the compiled program free of write conflicts on the machine hardware.

Co-occurrence of a node multiset ``P`` is an upward-closed property whose
basis is the finite set of *arrangements* of ``P`` into a forest
(:func:`repro.analysis.coverability.arrangements`), so mutual exclusion is
the complement of a coverability question and inherits the layered
engine's exactness envelope.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..core.hstate import HState
from ..core.scheme import RPScheme
from .certificates import AnalysisVerdict
from .coverability import arrangements
from .reachability import covers
from .session import AnalysisSession, resolve_session


def mutually_exclusive(
    scheme: RPScheme,
    first: str,
    second: str,
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Decide whether nodes *first* and *second* can never co-occur.

    ``holds=True`` means the nodes are mutually exclusive.  When they are
    not, the certificate is a witness path to a state containing both.
    """
    return nodes_never_cooccur(
        scheme,
        [first, second],
        initial=initial,
        max_states=max_states,
        session=session,
        budget=budget,
    )


def nodes_never_cooccur(
    scheme: RPScheme,
    nodes: Sequence[str],
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> AnalysisVerdict:
    """Generalised exclusion: can the node multiset *nodes* never be
    simultaneously live?  (Two equal entries ask for two distinct
    invocations at the same node.)"""
    for node in nodes:
        scheme.node(node)  # validate early
    wanted = list(nodes)
    cover = covers(
        scheme,
        targets=arrangements(wanted),
        predicate=lambda s: s.contains_all_nodes(wanted),
        initial=initial,
        max_states=max_states,
        session=session,
        budget=budget,
        what=f"co-occurrence of {sorted(wanted)}",
    )
    if getattr(cover, "is_partial", False):
        # exhaustion inside the cover query: the partial verdict passes
        # through unnegated — UNKNOWN is its own complement
        return cover
    return AnalysisVerdict(
        holds=not cover.holds,
        method=cover.method,
        certificate=cover.certificate,
        exact=cover.exact,
        details=cover.details,
    )


def write_conflicts(
    scheme: RPScheme,
    writer_nodes: Sequence[str],
    *,
    initial: Optional[HState] = None,
    max_states: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    budget: Optional[Any] = None,
) -> dict:
    """The §5.3 compiler check: which pairs of writer nodes may conflict?

    Returns a mapping from each unordered pair of distinct nodes in
    *writer_nodes* to its :func:`mutually_exclusive` verdict; pairs whose
    verdict does not hold are potential hardware write conflicts.

    All pair queries share one session (the caller's, or a fresh one), so
    the reachable fragment is explored once however many pairs there are.
    A ``budget=`` governs the pairs *cumulatively* (one deadline for the
    whole sweep); under ``on_exhaust="partial"`` the pairs that did not
    finish map to partial verdicts.
    """
    sess = resolve_session(scheme, session, initial)
    verdicts = {}
    distinct = sorted(set(writer_nodes))
    for i, a in enumerate(distinct):
        for b in distinct[i + 1 :]:
            verdicts[(a, b)] = mutually_exclusive(
                scheme, a, b, max_states=max_states, session=sess, budget=budget
            )
    return verdicts
