"""``repro.api`` — the typed request/response facade over the analyses.

Every way of asking this framework a question — the ``rpcheck`` CLI, an
in-process library call, the :mod:`repro.serve` daemon, the benchmark
drivers — goes through the same two dataclasses:

* :class:`AnalysisRequest` — *what to analyse*: an RP program source (or
  the ``sha256:16hex`` fingerprint of a scheme the server already
  holds), the procedure to run, its parameters, an optional budget
  specification and trace options.  Serialises to the versioned
  ``rpcheck-request/1`` JSON shape.
* :class:`AnalysisResponse` — *the answer*: a uniform ``verdict`` string
  plus the conclusive fields (``holds``/``method``/``exact``), the
  partial/exhaustion structure for interrupted runs, per-procedure
  summaries, session stats, the scheme identity block and the run id.
  Serialises to ``rpcheck-response/1``.

:func:`execute` is the one evaluation path: it resolves the scheme,
builds the per-request :class:`~repro.robust.Budget` from the request's
:class:`BudgetSpec`, dispatches to the decision procedure, converts the
result (including :class:`~repro.robust.PartialVerdict` structure and
budget exhaustion) into a response, and optionally appends the query to
a run ledger.  Because the CLI, the serve daemon and library callers are
all thin adapters over ``execute``, the wire protocol, the command line
and the in-process API cannot drift apart: a verdict has exactly one
shape.

The procedure registry (:data:`PROCEDURES`) names the queries a request
may ask for; each entry adapts one keyword-only decision-procedure entry
point from :mod:`repro.analysis`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .analysis import (
    AnalysisSession,
    SchemeReport,
    analyze,
    boundedness,
    halts,
    may_terminate,
    mutually_exclusive,
    node_reachable,
    normed,
    persistent,
    sup_reachability,
)
from .core.scheme import RPScheme
from .errors import AnalysisBudgetExceeded, BudgetExhausted, RPError
from .obs.ledger import make_entry, new_run_id, scheme_fingerprint, verdict_summary
from .obs.tracer import TraceContext, trace_context

__all__ = [
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "PROCEDURES",
    "ApiError",
    "BudgetSpec",
    "TraceOptions",
    "AnalysisRequest",
    "AnalysisResponse",
    "resolve_scheme",
    "execute",
    "worker_expansions",
]

#: Wire schema tag of a serialised :class:`AnalysisRequest`.
REQUEST_SCHEMA = "rpcheck-request/1"

#: Wire schema tag of a serialised :class:`AnalysisResponse`.
RESPONSE_SCHEMA = "rpcheck-response/1"


class ApiError(RPError):
    """A malformed or unanswerable request (bad schema, unknown procedure,
    missing scheme source, unknown fingerprint)."""


# ----------------------------------------------------------------------
# Request-side value objects
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BudgetSpec:
    """A JSON-portable description of a per-request resource budget.

    The spec is pure data (no clocks, no state) so it can cross the wire;
    :meth:`to_budget` instantiates the live
    :class:`~repro.robust.Budget`, optionally wiring in a server-side
    :class:`~repro.robust.CancelToken`.  ``on_exhaust`` defaults to
    ``"partial"`` — a remote caller wants a structured UNKNOWN, not a
    dropped connection.
    """

    deadline: Optional[float] = None
    max_states: Optional[int] = None
    max_memory_mib: Optional[float] = None
    on_exhaust: str = "partial"

    def to_budget(self, *, cancel: Any = None):
        """The live :class:`~repro.robust.Budget` for this spec."""
        from .robust import Budget

        return Budget(
            deadline=self.deadline,
            max_states=self.max_states,
            max_memory_bytes=(
                int(self.max_memory_mib * 1024 * 1024)
                if self.max_memory_mib is not None
                else None
            ),
            cancel=cancel,
            on_exhaust=self.on_exhaust,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "deadline": self.deadline,
            "max_states": self.max_states,
            "max_memory_mib": self.max_memory_mib,
            "on_exhaust": self.on_exhaust,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BudgetSpec":
        unknown = set(payload) - {
            "deadline", "max_states", "max_memory_mib", "on_exhaust",
        }
        if unknown:
            raise ApiError(f"budget spec has unknown keys: {sorted(unknown)}")
        return cls(
            deadline=payload.get("deadline"),
            max_states=payload.get("max_states"),
            max_memory_mib=payload.get("max_memory_mib"),
            on_exhaust=payload.get("on_exhaust", "partial"),
        )


@dataclass(frozen=True)
class TraceOptions:
    """What telemetry a request wants back.

    ``stream`` asks the serve daemon to forward span/event records to the
    client as they happen (``{"type": "event", ...}`` lines ahead of the
    final response); ``stats`` includes the session-counter snapshot in
    the response (on by default — it is small and always useful).
    """

    stream: bool = False
    stats: bool = True

    def as_dict(self) -> Dict[str, Any]:
        return {"stream": self.stream, "stats": self.stats}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceOptions":
        unknown = set(payload) - {"stream", "stats"}
        if unknown:
            raise ApiError(f"trace options have unknown keys: {sorted(unknown)}")
        return cls(
            stream=bool(payload.get("stream", False)),
            stats=bool(payload.get("stats", True)),
        )


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis question, in wire-portable form.

    Exactly one of *source* (RP program text, compiled server-side) or
    *fingerprint* (the ledger's ``sha256:16hex`` scheme fingerprint,
    resolved against a session pool that already holds the scheme) must
    identify the subject.  *params* are the procedure's keyword
    arguments (``max_states``, ``node``, ``first``/``second``, ...);
    unknown parameters are rejected at execution time by the procedure's
    own keyword-only signature.
    """

    procedure: str
    source: Optional[str] = None
    fingerprint: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    budget: Optional[BudgetSpec] = None
    trace: TraceOptions = field(default_factory=TraceOptions)
    request_id: Optional[str] = None
    #: Exploration worker processes for this query (``None`` = the
    #: server's default, which is the sequential path).  Honored by
    #: :func:`execute` and the serve daemon; see docs/performance.md.
    workers: Optional[int] = None
    #: Propagated distributed-trace context (W3C-shaped:
    #: ``00-<32 hex trace id>-<16 hex parent span id>-01``; an all-zero
    #: parent field means "trace id only").  When set, the server's root
    #: span for this query joins the caller's trace instead of minting a
    #: fresh one — see :class:`repro.obs.TraceContext` and
    #: docs/serving.md.  Optional and additive to ``rpcheck-request/1``.
    traceparent: Optional[str] = None

    def validate(self) -> "AnalysisRequest":
        """Raise :class:`ApiError` on structural problems; returns self."""
        if self.procedure not in PROCEDURES:
            raise ApiError(
                f"unknown procedure {self.procedure!r} "
                f"(known: {', '.join(sorted(PROCEDURES))})"
            )
        if self.source is None and self.fingerprint is None:
            raise ApiError("request needs a scheme source or a fingerprint")
        if self.source is not None and self.fingerprint is not None:
            raise ApiError("request may carry a source or a fingerprint, not both")
        if not isinstance(self.params, Mapping):
            raise ApiError("params must be a mapping")
        if self.workers is not None and (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise ApiError(f"workers must be a positive int, got {self.workers!r}")
        if self.traceparent is not None and not isinstance(self.traceparent, str):
            raise ApiError(
                f"traceparent must be a string, got {self.traceparent!r}"
            )
        return self

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": REQUEST_SCHEMA,
            "procedure": self.procedure,
            "source": self.source,
            "fingerprint": self.fingerprint,
            "params": dict(self.params),
            "budget": self.budget.as_dict() if self.budget is not None else None,
            "trace": self.trace.as_dict(),
            "request_id": self.request_id,
            "workers": self.workers,
            "traceparent": self.traceparent,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "AnalysisRequest":
        if not isinstance(payload, Mapping):
            raise ApiError("request payload is not an object")
        schema = payload.get("schema")
        if schema != REQUEST_SCHEMA:
            raise ApiError(
                f"request schema is {schema!r}, expected {REQUEST_SCHEMA!r}"
            )
        budget = payload.get("budget")
        trace = payload.get("trace")
        return cls(
            procedure=payload.get("procedure", ""),
            source=payload.get("source"),
            fingerprint=payload.get("fingerprint"),
            params=dict(payload.get("params") or {}),
            budget=BudgetSpec.from_dict(budget) if budget is not None else None,
            trace=TraceOptions.from_dict(trace) if trace is not None else TraceOptions(),
            request_id=payload.get("request_id"),
            workers=payload.get("workers"),
            traceparent=payload.get("traceparent"),
        ).validate()


# ----------------------------------------------------------------------
# Response
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisResponse:
    """The uniform answer shape every consumer reads.

    ``verdict`` is one of ``"yes"``/``"no"`` (a conclusive boolean
    answer), ``"unknown"`` (a partial verdict — see ``partial``),
    ``"inconclusive"`` (a state budget ran out without a partial-mode
    budget), ``"conclusive"`` (a fully answered battery), or ``"error"``
    (see ``error``).  ``procedures`` carries
    :func:`~repro.obs.ledger.verdict_summary`-shaped blocks — one per
    answered question, several for the ``analyze`` battery — which is
    also exactly what the run ledger records, so wire answers and ledger
    history stay comparable.
    """

    procedure: str
    verdict: str
    holds: Optional[bool] = None
    method: Optional[str] = None
    exact: Optional[bool] = None
    partial: Optional[Dict[str, Any]] = None
    procedures: Dict[str, Any] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    scheme: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    run_id: Optional[str] = None
    request_id: Optional[str] = None
    elapsed_seconds: float = 0.0
    #: Echo of the request's propagated trace context (``None`` when the
    #: caller sent none) — lets a client confirm its query joined the
    #: intended trace.  Excluded from :meth:`comparable` by design.
    traceparent: Optional[str] = None

    @property
    def ok(self) -> bool:
        """The request was answered (possibly partially) without erroring."""
        return self.error is None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESPONSE_SCHEMA,
            "procedure": self.procedure,
            "verdict": self.verdict,
            "holds": self.holds,
            "method": self.method,
            "exact": self.exact,
            "partial": self.partial,
            "procedures": dict(self.procedures),
            "details": dict(self.details),
            "stats": dict(self.stats),
            "scheme": self.scheme,
            "error": self.error,
            "run_id": self.run_id,
            "request_id": self.request_id,
            "elapsed_seconds": self.elapsed_seconds,
            "traceparent": self.traceparent,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "AnalysisResponse":
        if not isinstance(payload, Mapping):
            raise ApiError("response payload is not an object")
        schema = payload.get("schema")
        if schema != RESPONSE_SCHEMA:
            raise ApiError(
                f"response schema is {schema!r}, expected {RESPONSE_SCHEMA!r}"
            )
        return cls(
            procedure=payload.get("procedure", ""),
            verdict=payload.get("verdict", "error"),
            holds=payload.get("holds"),
            method=payload.get("method"),
            exact=payload.get("exact"),
            partial=payload.get("partial"),
            procedures=dict(payload.get("procedures") or {}),
            details=dict(payload.get("details") or {}),
            stats=dict(payload.get("stats") or {}),
            scheme=payload.get("scheme"),
            error=payload.get("error"),
            run_id=payload.get("run_id"),
            request_id=payload.get("request_id"),
            elapsed_seconds=float(payload.get("elapsed_seconds") or 0.0),
            traceparent=payload.get("traceparent"),
        )

    def comparable(self) -> Dict[str, Any]:
        """The run-invariant answer fields (the differential-gate view).

        Drops everything that legitimately varies between an in-process
        and a served evaluation of the same request — run ids, timings,
        stats, progress counters — and keeps what must never drift: the
        verdict, the per-procedure summaries, and the partial/exhaustion
        *structure* (which resource ran out, whether a resume token was
        attached).
        """
        partial = None
        if self.partial is not None:
            partial = {
                "resource": self.partial.get("resource"),
                "resumable": self.partial.get("resumable"),
            }
        return {
            "procedure": self.procedure,
            "verdict": self.verdict,
            "holds": self.holds,
            "method": self.method,
            "exact": self.exact,
            "partial": partial,
            "procedures": dict(self.procedures),
            "error": None if self.error is None else self.error.get("type"),
        }


# ----------------------------------------------------------------------
# Procedure registry
# ----------------------------------------------------------------------


def _single(procedure: Callable[..., Any], *required: str):
    """Adapt one single-verdict decision procedure into the registry shape."""

    def run(scheme, session, budget, params: Dict[str, Any]):
        missing = [name for name in required if name not in params]
        if missing:
            raise ApiError(
                f"procedure requires parameter(s): {', '.join(missing)}"
            )
        positional = [params.pop(name) for name in required]
        return procedure(
            scheme, *positional, session=session, budget=budget, **params
        )

    return run


def _run_analyze(scheme, session, budget, params: Dict[str, Any]):
    return analyze(scheme, session=session, budget=budget, **params)


#: Request-addressable procedures.  Values take ``(scheme, session,
#: budget, params)`` and return a verdict object or a ``SchemeReport``.
PROCEDURES: Dict[str, Callable[..., Any]] = {
    "analyze": _run_analyze,
    "boundedness": _single(boundedness),
    "halts": _single(halts),
    "may_terminate": _single(may_terminate),
    "normed": _single(normed),
    "node_reachable": _single(node_reachable, "node"),
    "mutually_exclusive": _single(mutually_exclusive, "first", "second"),
    "sup_reachability": _single(sup_reachability),
    "persistent": _single(persistent, "nodes"),
}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def worker_expansions(metrics: Mapping[str, Any]) -> Dict[str, int]:
    """Per-worker states-expanded counts from a metrics snapshot.

    Reads the ``parallel.states_expanded{worker=i}`` labelled children a
    sharded exploration folds into the session registry; empty for
    sequential runs.  Keys are worker indices as strings (JSON-stable).
    """
    counter = metrics.get("parallel.states_expanded")
    if not isinstance(counter, Mapping):
        return {}
    labels = counter.get("labels")
    if not isinstance(labels, Mapping):
        return {}
    out: Dict[str, int] = {}
    for key, child in labels.items():
        if not isinstance(child, Mapping):
            continue
        worker = key.strip("{}").split("=", 1)[-1]
        out[worker] = int(child.get("value", 0))
    return out


def resolve_scheme(request: AnalysisRequest) -> RPScheme:
    """Compile the request's source into a scheme (source requests only)."""
    if request.source is None:
        raise ApiError(
            f"fingerprint {request.fingerprint!r} cannot be resolved without "
            f"a session pool holding that scheme"
        )
    from .lang import compile_source

    return compile_source(request.source).scheme


def _partial_block(verdict: Any) -> Dict[str, Any]:
    progress = getattr(verdict, "progress", None)
    block: Dict[str, Any] = {
        "resource": getattr(verdict, "resource", None),
        "resumable": bool(getattr(verdict, "resumable", False)),
    }
    if progress is not None:
        block.update(
            states_explored=progress.states_explored,
            frontier_size=progress.frontier_size,
            elapsed_seconds=progress.elapsed_seconds,
        )
    return block


def _verdict_fields(procedure: str, result: Any) -> Dict[str, Any]:
    """Map a procedure result onto the response's verdict fields."""
    if isinstance(result, SchemeReport):
        summaries = {
            "boundedness": verdict_summary(result.bounded),
            "halting": verdict_summary(result.halting),
            "normedness": verdict_summary(result.normedness),
        }
        return {
            "verdict": "conclusive" if result.conclusive else "inconclusive",
            "procedures": summaries,
            "details": {
                "conclusive": result.conclusive,
                "wait_free": result.wait_free,
                "unreachable_nodes": list(result.unreachable_nodes),
                "inconclusive_nodes": list(result.inconclusive_nodes),
                "basis": None
                if result.basis is None
                else [state.to_notation() for state in result.basis],
                "render": result.render(),
            },
        }
    if getattr(result, "is_partial", False):
        return {
            "verdict": "unknown",
            "holds": None,
            "method": getattr(result, "method", "partial"),
            "exact": False,
            "partial": _partial_block(result),
            "procedures": {procedure: verdict_summary(result)},
            "details": {"describe": result.describe()},
        }
    # a conclusive AnalysisVerdict (or CTLResult — same surface)
    certificate = getattr(result, "certificate", None)
    details: Dict[str, Any] = {}
    basis = getattr(certificate, "basis", None)
    if basis is not None:
        details["basis"] = [state.to_notation() for state in basis]
    return {
        "verdict": "yes" if result.holds else "no",
        "holds": bool(result.holds),
        "method": getattr(result, "method", None),
        "exact": getattr(result, "exact", None),
        "procedures": {procedure: verdict_summary(result)},
        "details": details,
    }


def execute(
    request: AnalysisRequest,
    *,
    scheme: Optional[RPScheme] = None,
    session: Optional[AnalysisSession] = None,
    budget: Any = None,
    cancel: Any = None,
    ledger: Any = None,
    ledger_kind: str = "api",
    run_id: Optional[str] = None,
) -> AnalysisResponse:
    """Answer *request*; never raises for analysis-level failures.

    *scheme*/*session* let a caller that already holds a compiled scheme
    (the CLI's one-session-per-invocation, the serve daemon's warm pool)
    skip compilation and share exploration; otherwise the request's
    source is compiled and a throwaway session is used.  *budget*
    overrides the request's :class:`BudgetSpec` with an already-built
    :class:`~repro.robust.Budget` (the CLI does this to keep one
    cumulative budget across several queries); *cancel* wires a
    :class:`~repro.robust.CancelToken` into a spec-built budget.

    With *ledger* (a :class:`~repro.obs.Ledger`), the query is appended
    as one ``rpcheck-ledger/1`` entry of kind *ledger_kind* — served
    queries land in the same history as every other run.

    Structural problems (:class:`ApiError`), analysis errors
    (:class:`~repro.errors.RPError`) and plain state-budget exhaustion
    all come back as responses (``verdict="error"`` /
    ``"inconclusive"``), because a remote caller cannot catch.
    """
    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    rid = run_id or new_run_id()
    try:
        request.validate()
        subject = scheme if scheme is not None else resolve_scheme(request)
    except RPError as error:
        return AnalysisResponse(
            procedure=request.procedure,
            verdict="error",
            error={"type": type(error).__name__, "message": str(error)},
            run_id=rid,
            request_id=request.request_id,
            elapsed_seconds=time.perf_counter() - started_wall,
            traceparent=request.traceparent,
        )
    owns_session = session is None
    if owns_session:
        sess = AnalysisSession(subject, workers=request.workers or 1)
    else:
        sess = session
        if request.workers is not None:
            # honor the request's knob on a shared (pooled) session; the
            # serve daemon resets this per query so worker counts never
            # leak between requests
            sess.workers = request.workers
    live_budget = budget
    if live_budget is None and request.budget is not None:
        live_budget = request.budget.to_budget(cancel=cancel)
    params = dict(request.params)
    fields: Dict[str, Any]
    outcome = "ok"
    run_error: Optional[BaseException] = None
    try:
        # join the caller's distributed trace (no-op without a
        # traceparent): any root span the procedure opens — the daemon's
        # serve.query wrapper, or a bare phase span for direct callers —
        # adopts the propagated trace id and remote parent
        with trace_context(TraceContext.from_traceparent(request.traceparent)):
            result = PROCEDURES[request.procedure](
                subject, sess, live_budget, params
            )
        fields = _verdict_fields(request.procedure, result)
        if fields["verdict"] == "unknown":
            outcome = "partial"
    except BudgetExhausted as error:
        # a raise-mode governed budget ran out (deadline, memory, or a
        # cooperative cancellation): structurally a partial, like the
        # partial-mode path, so cancellation is visible over the wire
        outcome = "partial"
        fields = {
            "verdict": "unknown",
            "method": "partial",
            "exact": False,
            "partial": {"resource": error.resource, "resumable": False},
            "procedures": {
                request.procedure: {
                    "verdict": "partial",
                    "resource": error.resource,
                    "method": "partial",
                }
            },
            "details": {"message": str(error)},
        }
    except AnalysisBudgetExceeded as error:
        outcome = "partial"
        fields = {
            "verdict": "inconclusive",
            "procedures": {request.procedure: {"verdict": "inconclusive"}},
            "details": {"message": str(error), "explored": error.explored},
        }
    except (RPError, TypeError) as error:
        # TypeError: unknown/invalid params hitting the keyword-only
        # procedure signature — a caller mistake, reported structurally
        outcome = "error"
        run_error = error
        fields = {
            "verdict": "error",
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    elapsed = time.perf_counter() - started_wall
    stats = sess.stats.as_dict() if request.trace.stats else {}
    response = AnalysisResponse(
        procedure=request.procedure,
        run_id=rid,
        request_id=request.request_id,
        traceparent=request.traceparent,
        scheme={
            "name": subject.name,
            "nodes": len(subject),
            "fingerprint": scheme_fingerprint(subject),
        },
        stats=stats,
        elapsed_seconds=elapsed,
        **fields,
    )
    if ledger is not None:
        try:
            sess.sync_metrics()
            metrics_snapshot = sess.metrics.as_dict()
            extra = {
                "procedure": request.procedure,
                "request_id": request.request_id,
                "workers": sess.workers,
            }
            expansions = worker_expansions(metrics_snapshot)
            if expansions:
                # per-worker attribution, so `rpcheck diff` can tell a
                # parallelism win from an algorithmic one
                extra["worker_expansions"] = expansions
            restarts = metrics_snapshot.get("parallel.worker_restarts")
            if isinstance(restarts, Mapping) and restarts.get("value"):
                # worker deaths were survived; make the recovery auditable
                extra["worker_restarts"] = int(restarts["value"])
            if metrics_snapshot.get("parallel.degraded", {}).get("value"):
                extra["parallel_degraded"] = True
            ledger.append(
                make_entry(
                    kind=ledger_kind,
                    scheme=subject,
                    procedures=dict(response.procedures),
                    metrics=metrics_snapshot,
                    budget=live_budget,
                    outcome=outcome,
                    error=run_error,
                    wall_seconds=elapsed,
                    cpu_seconds=time.process_time() - started_cpu,
                    run_id=rid,
                    extra=extra,
                )
            )
        except (OSError, ValueError):
            # a full disk must not turn an answered query into an error
            response = replace(
                response,
                details={**response.details, "ledger_error": True},
            )
    if owns_session:
        sess.close()
    return response
