"""Well-quasi-ordering (wqo) interfaces.

A quasi-ordering ``≤`` on a set ``X`` is a *well-quasi-ordering* when every
infinite sequence ``x0, x1, ...`` contains an increasing pair
``xi ≤ xj`` with ``i < j``.  Equivalently: there are no infinite strictly
descending chains and no infinite antichains.  The paper's decidability
results all rest on two wqos over hierarchical states — Kruskal's tree
embedding ``⪯`` and its ⋆ (gap) refinement.

This module defines the tiny protocol the rest of :mod:`repro.wqo` works
against, plus ready-made instances; :mod:`repro.wqo.higman` and
:mod:`repro.wqo.kruskal` build composite wqos, and :mod:`repro.wqo.basis`
implements antichains and finite bases of upward-closed sets over any
:class:`QuasiOrder`.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class QuasiOrder(Generic[T]):
    """A decidable quasi-ordering, given by its ``leq`` relation."""

    def __init__(self, leq: Callable[[T, T], bool], name: str = "≤") -> None:
        self._leq = leq
        self.name = name

    def leq(self, a: T, b: T) -> bool:
        """Decide ``a ≤ b``."""
        return self._leq(a, b)

    def lt(self, a: T, b: T) -> bool:
        """Strict part: ``a ≤ b`` and not ``b ≤ a``."""
        return self._leq(a, b) and not self._leq(b, a)

    def equivalent(self, a: T, b: T) -> bool:
        """``a ≤ b ≤ a``."""
        return self._leq(a, b) and self._leq(b, a)

    def incomparable(self, a: T, b: T) -> bool:
        """Neither ``a ≤ b`` nor ``b ≤ a``."""
        return not self._leq(a, b) and not self._leq(b, a)

    def __repr__(self) -> str:
        return f"QuasiOrder({self.name})"


def equality_order() -> QuasiOrder:
    """Discrete order: ``a ≤ b`` iff ``a == b`` (a wqo iff the carrier is
    finite — which is how it is used here, over finite alphabets)."""
    return QuasiOrder(lambda a, b: a == b, name="=")


def natural_order() -> QuasiOrder:
    """The usual order on naturals (Dickson's building block)."""
    return QuasiOrder(lambda a, b: a <= b, name="≤ℕ")


def product_order(*components: QuasiOrder) -> QuasiOrder:
    """Componentwise order on tuples (wqo by Dickson's lemma)."""

    def leq(a: Sequence, b: Sequence) -> bool:
        return len(a) == len(b) and all(
            comp.leq(x, y) for comp, x, y in zip(components, a, b)
        )

    return QuasiOrder(leq, name="×".join(c.name for c in components))


def check_increasing_pair(
    order: QuasiOrder, sequence: Sequence[T]
) -> Tuple[int, int]:
    """Find an increasing pair ``(i, j)`` with ``i < j`` and ``s[i] ≤ s[j]``.

    Raises :class:`ValueError` when the (finite) sequence is a *bad
    sequence*, i.e. has no increasing pair.  Used by the test-suite to
    sample-check that the implemented relations behave like wqos: long
    random sequences over a wqo almost always contain increasing pairs, and
    sequences the theory proves good must never raise.
    """
    for j in range(len(sequence)):
        for i in range(j):
            if order.leq(sequence[i], sequence[j]):
                return (i, j)
    raise ValueError("bad sequence: no increasing pair found")


def is_bad_sequence(order: QuasiOrder, sequence: Sequence[T]) -> bool:
    """``True`` iff no ``i < j`` has ``s[i] ≤ s[j]`` (a finite bad sequence)."""
    try:
        check_increasing_pair(order, sequence)
    except ValueError:
        return True
    return False


def minimal_elements(order: QuasiOrder, items: Iterable[T]) -> List[T]:
    """The minimal elements of *items* (one representative per equivalence
    class), preserving first-seen order."""
    kept: List[T] = []
    for item in items:
        if any(order.leq(existing, item) for existing in kept):
            continue
        kept = [existing for existing in kept if not order.leq(item, existing)]
        kept.append(item)
    return kept
