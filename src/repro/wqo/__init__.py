"""Well-quasi-ordering toolkit (Higman, Kruskal, antichains, bases)."""

from .basis import UpwardClosedSet, antichain
from .higman import multiset_leq, multiset_order, subword_leq, subword_order
from .kruskal import (
    bad_sequence_extension,
    embedding_upward_closed,
    gap_embedding_order,
    greedy_bad_sequence,
    signature_compatible,
    state_signature,
    tree_embedding_order,
)
from .orderings import (
    QuasiOrder,
    check_increasing_pair,
    equality_order,
    is_bad_sequence,
    minimal_elements,
    natural_order,
    product_order,
)

__all__ = [
    "UpwardClosedSet",
    "antichain",
    "multiset_leq",
    "multiset_order",
    "subword_leq",
    "subword_order",
    "bad_sequence_extension",
    "embedding_upward_closed",
    "gap_embedding_order",
    "greedy_bad_sequence",
    "signature_compatible",
    "state_signature",
    "tree_embedding_order",
    "QuasiOrder",
    "check_increasing_pair",
    "equality_order",
    "is_bad_sequence",
    "minimal_elements",
    "natural_order",
    "product_order",
]
