"""Antichains and finite bases of upward-closed sets.

The paper (Section 3): a set ``I ⊆ M(G)`` is *upward-closed* iff
``σ' ∈ I`` and ``σ' ⪯ σ`` entail ``σ ∈ I``; the upward closure of a finite
``I0`` is the set of all states above some element of ``I0``, and ``I0`` is
then a *basis*.  Because ``⪯`` is a well-(quasi-)ordering, **every**
upward-closed set has a finite basis — the representation every decision
procedure of Section 3 manipulates.

:class:`UpwardClosedSet` keeps a *minimal* basis (an antichain) under any
:class:`~repro.wqo.orderings.QuasiOrder` and supports membership, union,
inclusion and fixpoint detection, which is what the backward coverability
algorithm of :mod:`repro.analysis.coverability` iterates on.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Sequence, TypeVar

from .orderings import QuasiOrder, minimal_elements

T = TypeVar("T")


class UpwardClosedSet(Generic[T]):
    """An upward-closed set represented by its finite minimal basis."""

    def __init__(self, order: QuasiOrder, basis: Iterable[T] = ()) -> None:
        self.order = order
        self._basis: List[T] = minimal_elements(order, basis)

    @property
    def basis(self) -> Sequence[T]:
        """The minimal basis (an antichain, up to order-equivalence)."""
        return tuple(self._basis)

    def is_empty(self) -> bool:
        """``True`` iff the set is empty (empty basis)."""
        return not self._basis

    def __contains__(self, item: T) -> bool:
        return any(self.order.leq(low, item) for low in self._basis)

    def __iter__(self) -> Iterator[T]:
        return iter(self._basis)

    def __len__(self) -> int:
        return len(self._basis)

    def add(self, item: T) -> bool:
        """Add ``↑item``; return ``True`` iff the set grew.

        The basis stays minimal: dominated elements are dropped.
        """
        if item in self:
            return False
        self._basis = [low for low in self._basis if not self.order.leq(item, low)]
        self._basis.append(item)
        return True

    def update(self, items: Iterable[T]) -> bool:
        """Add several generators; return ``True`` iff the set grew."""
        grew = False
        for item in items:
            grew |= self.add(item)
        return grew

    def union(self, other: "UpwardClosedSet[T]") -> "UpwardClosedSet[T]":
        """A new set ``self ∪ other``."""
        result = UpwardClosedSet(self.order, self._basis)
        result.update(other._basis)
        return result

    def includes(self, other: "UpwardClosedSet[T]") -> bool:
        """Set inclusion ``other ⊆ self`` (decided on bases)."""
        return all(low in self for low in other._basis)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UpwardClosedSet):
            return NotImplemented
        return self.includes(other) and other.includes(self)

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("UpwardClosedSet is mutable and unhashable")

    def copy(self) -> "UpwardClosedSet[T]":
        """A shallow copy (bases share elements, which are immutable)."""
        return UpwardClosedSet(self.order, self._basis)

    def __repr__(self) -> str:
        return f"UpwardClosedSet({self.order.name}, basis={self._basis!r})"


def antichain(order: QuasiOrder, items: Iterable[T]) -> List[T]:
    """The minimal elements of *items* — a convenience re-export."""
    return minimal_elements(order, items)
