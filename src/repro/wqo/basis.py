"""Antichains and finite bases of upward-closed sets.

The paper (Section 3): a set ``I ⊆ M(G)`` is *upward-closed* iff
``σ' ∈ I`` and ``σ' ⪯ σ`` entail ``σ ∈ I``; the upward closure of a finite
``I0`` is the set of all states above some element of ``I0``, and ``I0`` is
then a *basis*.  Because ``⪯`` is a well-(quasi-)ordering, **every**
upward-closed set has a finite basis — the representation every decision
procedure of Section 3 manipulates.

:class:`UpwardClosedSet` keeps a *minimal* basis (an antichain) under any
:class:`~repro.wqo.orderings.QuasiOrder` and supports membership, union,
inclusion and fixpoint detection, which is what the backward coverability
algorithm of :mod:`repro.analysis.coverability` iterates on.

Measure indexing.  A basis of hierarchical states can be *indexed* by a
monotone measure (size, or the full signature of
:class:`~repro.core.hstate.Signature`): since ``a ⪯ b`` forces
``measure(a) ≤ measure(b)``, membership tests only consult basis elements
whose measure is compatible with the query, and minimality pruning only
consults elements the new generator could dominate.  Pass ``measure=``
(and optionally ``compatible=``, defaulting to ``<=``) to enable it; the
indexed basis is antichain-equal to the unindexed one by construction —
the index never changes which ``leq`` calls *succeed*, only skips calls
that provably cannot.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

from .orderings import QuasiOrder, minimal_elements

T = TypeVar("T")


def _default_compatible(small, big) -> bool:
    return small <= big


class UpwardClosedSet(Generic[T]):
    """An upward-closed set represented by its finite minimal basis.

    Parameters
    ----------
    order:
        The quasi-order the closure is taken in.
    basis:
        Initial generators (minimised on construction).
    measure:
        Optional monotone index: ``order.leq(a, b)`` must imply
        ``compatible(measure(a), measure(b))``.  When given, ``leq`` calls
        against measure-incompatible basis elements are skipped.
    compatible:
        The compatibility test on measures (default ``<=``).
    """

    def __init__(
        self,
        order: QuasiOrder,
        basis: Iterable[T] = (),
        *,
        measure: Optional[Callable[[T], object]] = None,
        compatible: Optional[Callable[[object, object], bool]] = None,
    ) -> None:
        self.order = order
        self._measure = measure
        self._compatible = (
            compatible if compatible is not None else _default_compatible
        )
        self._basis: List[T] = []
        self._measures: List[object] = []
        if measure is None:
            self._basis = minimal_elements(order, basis)
        else:
            for item in basis:
                self.add(item)

    @property
    def basis(self) -> Sequence[T]:
        """The minimal basis (an antichain, up to order-equivalence)."""
        return tuple(self._basis)

    def is_empty(self) -> bool:
        """``True`` iff the set is empty (empty basis)."""
        return not self._basis

    def __contains__(self, item: T) -> bool:
        if self._measure is None:
            return any(self.order.leq(low, item) for low in self._basis)
        measure = self._measure(item)
        compatible = self._compatible
        leq = self.order.leq
        return any(
            compatible(low_measure, measure) and leq(low, item)
            for low, low_measure in zip(self._basis, self._measures)
        )

    def __iter__(self) -> Iterator[T]:
        return iter(self._basis)

    def __len__(self) -> int:
        return len(self._basis)

    def add(self, item: T) -> bool:
        """Add ``↑item``; return ``True`` iff the set grew.

        The basis stays minimal: dominated elements are dropped.
        """
        if item in self:
            return False
        if self._measure is None:
            self._basis = [
                low for low in self._basis if not self.order.leq(item, low)
            ]
            self._basis.append(item)
            return True
        measure = self._measure(item)
        compatible = self._compatible
        leq = self.order.leq
        survivors = [
            (low, low_measure)
            for low, low_measure in zip(self._basis, self._measures)
            if not (compatible(measure, low_measure) and leq(item, low))
        ]
        self._basis = [low for low, _ in survivors]
        self._measures = [low_measure for _, low_measure in survivors]
        self._basis.append(item)
        self._measures.append(measure)
        return True

    def update(self, items: Iterable[T]) -> bool:
        """Add several generators; return ``True`` iff the set grew."""
        grew = False
        for item in items:
            grew |= self.add(item)
        return grew

    def union(self, other: "UpwardClosedSet[T]") -> "UpwardClosedSet[T]":
        """A new set ``self ∪ other`` (inheriting this set's index)."""
        result = self.copy()
        result.update(other._basis)
        return result

    def includes(self, other: "UpwardClosedSet[T]") -> bool:
        """Set inclusion ``other ⊆ self`` (decided on bases)."""
        return all(low in self for low in other._basis)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UpwardClosedSet):
            return NotImplemented
        return self.includes(other) and other.includes(self)

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("UpwardClosedSet is mutable and unhashable")

    def copy(self) -> "UpwardClosedSet[T]":
        """A shallow copy (bases share elements, which are immutable)."""
        return UpwardClosedSet(
            self.order,
            self._basis,
            measure=self._measure,
            compatible=self._compatible if self._measure is not None else None,
        )

    def __repr__(self) -> str:
        return f"UpwardClosedSet({self.order.name}, basis={self._basis!r})"


def antichain(
    order: QuasiOrder,
    items: Iterable[T],
    *,
    measure: Optional[Callable[[T], object]] = None,
    compatible: Optional[Callable[[object, object], bool]] = None,
) -> List[T]:
    """The minimal elements of *items*, optionally measure-indexed.

    Without a *measure* this is :func:`~repro.wqo.orderings.minimal_elements`;
    with one, incompatible comparisons are skipped (same result, fewer
    ``leq`` calls).
    """
    if measure is None:
        return minimal_elements(order, items)
    store: UpwardClosedSet[T] = UpwardClosedSet(
        order, items, measure=measure, compatible=compatible
    )
    return list(store.basis)
