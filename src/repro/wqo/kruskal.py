"""Kruskal's Tree Theorem over hierarchical states.

Kruskal's Tree Theorem [Kru60] states that finite trees with labels from a
wqo, ordered by homeomorphic embedding, form a wqo.  The paper applies it
with label equality over the (finite) node set of a scheme: the embedding
``⪯`` of hierarchical states is a well-quasi-ordering, hence every
upward-closed set of states has a finite basis, which drives Theorem 5
(sup-reachability) and the termination arguments of Section 3.

The decision procedure for ``⪯`` itself lives in
:mod:`repro.core.embedding`; this module packages it (and the gap variant)
as :class:`~repro.wqo.orderings.QuasiOrder` instances, and provides the
minimal-bad-sequence utilities used to test the wqo property empirically.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..core.embedding import GapEmbedding, embeds
from ..core.hstate import HState, Signature
from .basis import UpwardClosedSet
from .orderings import QuasiOrder


def tree_embedding_order(
    leq: Optional[Callable[[HState, HState], bool]] = None
) -> QuasiOrder:
    """The paper's embedding ``⪯`` on hierarchical states, as a wqo.

    *leq* substitutes an equivalent decision procedure — typically the
    session-memoised ``EmbeddingIndex.embeds`` — without changing the
    order's meaning.
    """
    return QuasiOrder(leq if leq is not None else embeds, name="⪯")


def gap_embedding_order(gap_nodes: Optional[Iterable[str]]) -> QuasiOrder:
    """The ⋆-embedding ``⪯⋆`` with the given gap-node set.

    Note: the ⋆-embedding is a wqo over the states of a *fixed finite
    scheme* (labels range over a finite set); over unrestricted gap sets it
    degenerates to plain embedding.
    """
    gap = GapEmbedding(gap_nodes)
    return QuasiOrder(gap.embeds, name=f"⪯⋆{gap!r}")


def state_signature(state: HState) -> Signature:
    """The measure used to index state bases (see :mod:`repro.wqo.basis`)."""
    return state.signature


def signature_compatible(small: Signature, big: Signature) -> bool:
    """``a ⪯ b`` can only hold when ``signature(a)`` is dominated by
    ``signature(b)`` — the compatibility test for indexed bases."""
    return small.dominated_by(big)


def embedding_upward_closed(
    basis: Iterable[HState] = (),
    *,
    leq: Optional[Callable[[HState, HState], bool]] = None,
) -> UpwardClosedSet:
    """A signature-indexed upward-closed set of hierarchical states.

    Membership and minimality candidates are screened by the states'
    cached signatures before any ``leq`` (embedding) call; *leq* routes
    the surviving calls through a shared memo (e.g. an
    ``EmbeddingIndex``).  Antichain-equal to the unindexed representation
    on any input.
    """
    return UpwardClosedSet(
        tree_embedding_order(leq),
        basis,
        measure=state_signature,
        compatible=signature_compatible,
    )


def bad_sequence_extension(
    order: QuasiOrder, prefix: List[HState], candidates: Iterable[HState]
) -> Optional[HState]:
    """Extend a finite bad sequence if possible.

    Returns a candidate ``x`` such that ``prefix + [x]`` is still bad (no
    earlier element embeds into ``x``), or ``None`` when every candidate
    would close an increasing pair.  The test-suite uses this to grow
    maximal bad sequences and check they stay finite and small, an
    empirical echo of the wqo property.
    """
    for candidate in candidates:
        if not any(order.leq(earlier, candidate) for earlier in prefix):
            return candidate
    return None


def greedy_bad_sequence(
    order: QuasiOrder, candidates: Iterable[HState], limit: int = 10_000
) -> List[HState]:
    """Greedily build a bad sequence from *candidates* (first-fit).

    The result is an antichain-like witness whose length is bounded in
    practice; on a wqo it can never be extended indefinitely.
    """
    sequence: List[HState] = []
    for candidate in candidates:
        if len(sequence) >= limit:
            break
        if not any(order.leq(earlier, candidate) for earlier in sequence):
            sequence.append(candidate)
    return sequence
