"""Higman's lemma: subword and multiset orderings.

Higman's lemma states that if ``≤`` is a wqo on ``X`` then the *subword
embedding* on finite sequences over ``X`` is a wqo: ``u ⊑ v`` iff ``u`` can
be obtained from ``v`` by deleting elements and weakening the rest
(``u_i ≤ v_{f(i)}`` for some strictly increasing ``f``).  The multiset
variant (order-oblivious) is wqo as well.  Kruskal's Tree Theorem — the
basis of the paper's Section 3 — is proved by a minimal-bad-sequence
argument on top of exactly these constructions, which is why they live in
this package and are property-tested independently.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from .orderings import QuasiOrder

T = TypeVar("T")


def subword_leq(order: QuasiOrder, small: Sequence[T], big: Sequence[T]) -> bool:
    """Decide Higman's subword embedding ``small ⊑ big``.

    Greedy matching is correct for subword embedding: scan *big* and match
    each element of *small* to the earliest usable position.
    """
    position = 0
    for element in small:
        while position < len(big) and not order.leq(element, big[position]):
            position += 1
        if position == len(big):
            return False
        position += 1
    return True


def subword_order(base: QuasiOrder) -> QuasiOrder:
    """The subword-embedding quasi-order over sequences of *base* elements."""
    return QuasiOrder(
        lambda a, b: subword_leq(base, a, b),
        name=f"subword({base.name})",
    )


def multiset_leq(order: QuasiOrder, small: Sequence[T], big: Sequence[T]) -> bool:
    """Multiset embedding: an injection of *small* into *big* with
    ``s ≤ image(s)`` pointwise.

    Decided by maximum bipartite matching (Hungarian-style augmenting
    paths); unlike the subword case, greediness is *not* correct here
    because the base order need not be total.
    """
    if len(small) > len(big):
        return False
    adjacency: List[List[int]] = []
    for s in small:
        row = [j for j, b in enumerate(big) if order.leq(s, b)]
        if not row:
            return False
        adjacency.append(row)
    match_of_big = {}

    def augment(i: int, seen: set) -> bool:
        for j in adjacency[i]:
            if j in seen:
                continue
            seen.add(j)
            if j not in match_of_big or augment(match_of_big[j], seen):
                match_of_big[j] = i
                return True
        return False

    return all(augment(i, set()) for i in range(len(small)))


def multiset_order(base: QuasiOrder) -> QuasiOrder:
    """The multiset-embedding quasi-order over sequences of *base* elements
    (sequences are read as multisets — order is ignored)."""
    return QuasiOrder(
        lambda a, b: multiset_leq(base, a, b),
        name=f"multiset({base.name})",
    )
