"""Counter machines and the Theorem 9 encoding into interpreted RP."""

from .encode import EncodedMachine, encode, simulate_via_rp
from .machine import (
    HALT,
    CounterMachine,
    DecJz,
    Inc,
    MinskyError,
    adder_machine,
    busy_loop_machine,
    doubler_machine,
    zero_test_machine,
)

__all__ = [
    "EncodedMachine",
    "encode",
    "simulate_via_rp",
    "HALT",
    "CounterMachine",
    "DecJz",
    "Inc",
    "MinskyError",
    "adder_machine",
    "busy_loop_machine",
    "doubler_machine",
    "zero_test_machine",
]
