"""The Theorem 9 encoding: counter machines as interpreted RP schemes.

    "One can encode any Minsky counter machine into an RP scheme with
    finite interpretation.  For a counter C, an RP procedure is written.
    This procedure counts by spawning children invocations.  When we want
    to increment the counter, we ask it (through u) to spawn a new child.
    These children can testify (through u) that C is not zero.  Through u,
    we can ask one (any) of them to terminate, decrementing the value of
    C.  C can implement a (blocking) test for emptiness by using the wait
    construct to check that it has no children anymore."

Concretely, for every counter ``c`` the scheme has

* a **manager** procedure (one invocation, spawned by main at startup)
  polling the global memory: on ``(inc, c)`` it spawns a **unit** child
  and acknowledges; on ``(jz, c)`` it moves to a ``wait`` node and, once
  all its units are gone, reports ``(iszero, c)``;
* a **unit** procedure, one live invocation per counter tick, polling the
  global memory: it consumes ``(dec, c)`` by acknowledging and
  terminating, and answers ``(jz, c)`` with ``(nonzero, c)``.

The **main** procedure drives the machine control: each machine location
becomes a short protocol block (issue a request, poll for the reply).
All request/reply hand-offs are *atomic* — a test reads and rewrites the
global memory in one step — so no two processes can consume the same
request.

Correctness is of the may-flavour Theorem 9 needs: every run that reaches
the halt node has made only truthful branch decisions (units exist only
when the counter is positive; the manager passes its wait only when the
counter is zero, and the counter cannot change while a probe is pending
because main is the only source of commands and it is busy polling), and
the faithful interleaving always exists.  An adversarial interleaving can
*livelock* (the manager consumes a probe while units are alive and blocks
at its wait) but can never lie.

The global memory ranges over a finite set of small tuples and local
memories are a single point, so the interpretation is finite — which is
the whole point: finite-state colouring makes RP schemes Turing-powerful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..core.builder import SchemeBuilder
from ..core.scheme import RPScheme
from ..errors import AnalysisBudgetExceeded
from ..interp.interpretation import TableInterpretation
from ..interp.isemantics import InterpretedSemantics
from ..interp.istate import GlobalState
from ..interp.memory import UNIT
from .machine import HALT, CounterMachine, DecJz, Inc

#: Global-memory control words.
IDLE = ("idle",)
DONE = ("done",)


@dataclass(frozen=True)
class EncodedMachine:
    """The result of encoding: scheme + finite interpretation + node map."""

    machine: CounterMachine
    scheme: RPScheme
    interpretation: TableInterpretation
    halt_node: str
    unit_nodes: Dict[str, str]  # counter -> the unit's polling node
    location_nodes: Dict[str, str]  # machine location -> main entry node

    def counter_value(self, state: GlobalState) -> Dict[str, int]:
        """Read the counters off an interpreted state: live units per
        counter (a unit is live while at its polling node)."""
        counts = {name: 0 for name in self.machine.counters}
        for _path, node, _memory, _children in state.state.positions():
            for counter, unit_node in self.unit_nodes.items():
                if node == unit_node:
                    counts[counter] += 1
        return counts

    def at_halt(self, state: GlobalState) -> bool:
        """Is main at the halt node in *state*?"""
        return state.forget().contains_node(self.halt_node)


def encode(
    machine: CounterMachine,
    initial_counters: Optional[Mapping[str, int]] = None,
) -> EncodedMachine:
    """Encode *machine* (with the given initial counter values)."""
    initial = {name: 0 for name in machine.counters}
    initial.update(initial_counters or {})
    b = SchemeBuilder("minsky")
    unit_nodes: Dict[str, str] = {}
    manager_entries: Dict[str, str] = {}

    # --- per-counter procedures ---------------------------------------
    for c in machine.counters:
        unit_poll = f"unit_{c}"
        unit_end = f"unit_{c}_end"
        b.test(unit_poll, f"unit[{c}]", then=unit_end, orelse=unit_poll)
        b.end(unit_end)
        b.procedure(f"unit_{c}_proc", unit_poll)
        unit_nodes[c] = unit_poll

        m_inc = f"mgr_{c}_inc"
        m_spawn = f"mgr_{c}_spawn"
        m_ack = f"mgr_{c}_ack"
        m_jz = f"mgr_{c}_jz"
        m_wait = f"mgr_{c}_wait"
        m_zero = f"mgr_{c}_zero"
        b.test(m_inc, f"mgr_inc[{c}]", then=m_spawn, orelse=m_jz)
        b.pcall(m_spawn, invoked=unit_poll, succ=m_ack)
        b.action(m_ack, f"mgr_done[{c}]", m_inc)
        b.test(m_jz, f"mgr_jz[{c}]", then=m_wait, orelse=m_inc)
        b.wait(m_wait, m_zero)
        b.action(m_zero, f"mgr_iszero[{c}]", m_inc)
        b.procedure(f"manager_{c}", m_inc)
        manager_entries[c] = m_inc

    # --- main: spawn managers, seed counters, run the control ----------
    location_nodes: Dict[str, str] = {}
    halt_entry = "main_halt"
    location_nodes[HALT] = halt_entry

    def location_entry(location: str) -> str:
        return location_nodes.setdefault(
            location, f"loc_{location}" if location != HALT else halt_entry
        )

    # startup chain: pcall every manager, then seed initial counters
    startup: list = []
    counters = list(machine.counters)
    for index, c in enumerate(counters):
        node = f"boot_{c}"
        nxt = f"boot_{counters[index + 1]}" if index + 1 < len(counters) else None
        startup.append((node, c, nxt))
    seed_steps = []
    for c in counters:
        for tick in range(initial[c]):
            seed_steps.append((c, tick))

    def seed_node(position: int) -> str:
        c, tick = seed_steps[position]
        return f"seed_{c}_{tick}"

    after_boot = (
        seed_node(0) if seed_steps else location_entry(machine.initial_location)
    )
    for index, (node, c, nxt) in enumerate(startup):
        succ = nxt if nxt is not None else after_boot
        b.pcall(node, invoked=manager_entries[c], succ=succ)
    if not startup:
        # no counters at all: go straight to the control
        pass
    for position, (c, tick) in enumerate(seed_steps):
        issue = seed_node(position)
        wait_node = f"{issue}_w"
        nxt = (
            seed_node(position + 1)
            if position + 1 < len(seed_steps)
            else location_entry(machine.initial_location)
        )
        b.action(issue, f"issue_inc[{c}]", wait_node)
        b.test(wait_node, "await_done", then=nxt, orelse=wait_node)

    # control blocks, one per machine location
    for location, instruction in machine.instructions.items():
        entry = location_entry(location)
        if isinstance(instruction, Inc):
            wait_node = f"{entry}_w"
            b.action(entry, f"issue_inc[{instruction.counter}]", wait_node)
            b.test(
                wait_node,
                "await_done",
                then=location_entry(instruction.next_location),
                orelse=wait_node,
            )
        else:
            assert isinstance(instruction, DecJz)
            c = instruction.counter
            probe_nz = f"{entry}_nz"
            probe_z = f"{entry}_z"
            issue_dec = f"{entry}_d"
            await_dec = f"{entry}_dw"
            b.action(entry, f"issue_jz[{c}]", probe_nz)
            b.test(probe_nz, f"probe_nz[{c}]", then=issue_dec, orelse=probe_z)
            b.test(
                probe_z,
                f"probe_z[{c}]",
                then=location_entry(instruction.next_zero),
                orelse=probe_nz,
            )
            b.action(issue_dec, f"issue_dec[{c}]", await_dec)
            b.test(
                await_dec,
                "await_done",
                then=location_entry(instruction.next_nonzero),
                orelse=await_dec,
            )

    halt_end = "main_halt_end"
    b.action(halt_entry, "halted", halt_end)
    b.end(halt_end)
    b.procedure("main", startup[0][0] if startup else location_entry(machine.initial_location))

    root = startup[0][0] if startup else location_entry(machine.initial_location)
    scheme = b.build(root=root)
    interpretation = _control_interpretation()
    return EncodedMachine(
        machine=machine,
        scheme=scheme,
        interpretation=interpretation,
        halt_node=halt_entry,
        unit_nodes=unit_nodes,
        location_nodes=location_nodes,
    )


def _control_interpretation() -> TableInterpretation:
    """The finite interpretation: a control-word global memory.

    Actions issue requests or acknowledgements; tests atomically consume
    the request they are responsible for.  Labels are parsed as
    ``name[counter]``.
    """

    def split(label: str) -> Tuple[str, Optional[str]]:
        if label.endswith("]") and "[" in label:
            name, _, counter = label[:-1].partition("[")
            return name, counter
        return label, None

    def action(label: str, u, v):
        name, c = split(label)
        if name == "issue_inc":
            return ("inc", c), v
        if name == "issue_dec":
            return ("dec", c), v
        if name == "issue_jz":
            return ("jz", c), v
        if name == "mgr_done":
            return DONE, v
        if name == "mgr_iszero":
            return ("iszero", c), v
        if name == "halted":
            return u, v
        raise AssertionError(f"unknown action label {label!r}")

    def test(label: str, u, v):
        name, c = split(label)
        if name == "await_done":
            if u == DONE:
                return IDLE, v, True
            return u, v, False
        if name == "unit":
            if u == ("dec", c):
                return DONE, v, True  # consume and die
            if u == ("jz", c):
                return ("nonzero", c), v, False  # testify, keep living
            return u, v, False
        if name == "mgr_inc":
            if u == ("inc", c):
                return ("busy", c), v, True
            return u, v, False
        if name == "mgr_jz":
            if u == ("jz", c):
                return ("waiting", c), v, True
            return u, v, False
        if name == "probe_nz":
            if u == ("nonzero", c):
                return IDLE, v, True
            return u, v, False
        if name == "probe_z":
            if u == ("iszero", c):
                return IDLE, v, True
            return u, v, False
        raise AssertionError(f"unknown test label {label!r}")

    return TableInterpretation(
        initial_global=IDLE,
        initial_local=UNIT,
        action=action,
        test=test,
        finite=True,
        name="minsky-control",
    )


# ----------------------------------------------------------------------
# End-to-end simulation through the interpreted semantics
# ----------------------------------------------------------------------


def simulate_via_rp(
    machine: CounterMachine,
    initial_counters: Optional[Mapping[str, int]] = None,
    max_states: int = 200_000,
) -> Optional[Dict[str, int]]:
    """Run *machine* through its RP encoding.

    Explores ``M_I_G`` of the encoding for a state with main at the halt
    node and no pending protocol (global memory idle), and reads the
    counters off it.  Returns ``None`` when no halting state exists within
    the budget (the machine diverges — adversarial livelocks are pruned by
    the goal test requiring an idle memory).
    """
    encoded = encode(machine, initial_counters)
    semantics = InterpretedSemantics(encoded.scheme, encoded.interpretation)

    def is_goal(state: GlobalState) -> bool:
        return encoded.at_halt(state) and state.global_memory == IDLE

    from collections import deque

    start = semantics.initial_state
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        if is_goal(state):
            return encoded.counter_value(state)
        for transition in semantics.successors(state):
            target = transition.target
            if target in seen:
                continue
            if len(seen) >= max_states:
                raise AnalysisBudgetExceeded(
                    f"minsky simulation: {max_states} interpreted states "
                    f"explored without reaching halt",
                    explored=len(seen),
                )
            seen.add(target)
            queue.append(target)
    return None
