"""Minsky counter machines.

Theorem 9 proves RP schemes with finite interpretations Turing-powerful by
encoding counter machines; this module provides the machines themselves —
a register machine with non-negative counters and two instruction kinds:

* ``Inc(counter, next)`` — increment and jump;
* ``DecJz(counter, next_nonzero, next_zero)`` — if the counter is positive,
  decrement and jump to *next_nonzero*, else jump to *next_zero*;

plus ``HALT`` as a distinguished location.  Two counters suffice for
Turing completeness; the class supports any number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import RPError


class MinskyError(RPError):
    """A malformed counter machine."""


#: The distinguished halting location.
HALT = "halt"


@dataclass(frozen=True)
class Inc:
    """Increment *counter* and continue at *next_location*."""

    counter: str
    next_location: str


@dataclass(frozen=True)
class DecJz:
    """Decrement-or-branch: positive → decrement, go to *next_nonzero*;
    zero → go to *next_zero*."""

    counter: str
    next_nonzero: str
    next_zero: str


Instruction = Union[Inc, DecJz]


class CounterMachine:
    """A Minsky machine: locations, instructions, counters."""

    def __init__(
        self,
        instructions: Mapping[str, Instruction],
        initial_location: str,
        counters: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.instructions: Dict[str, Instruction] = dict(instructions)
        self.initial_location = initial_location
        used = []
        for instruction in self.instructions.values():
            if instruction.counter not in used:
                used.append(instruction.counter)
        self.counters: Tuple[str, ...] = counters if counters is not None else tuple(used)
        self._validate()

    def _validate(self) -> None:
        if self.initial_location != HALT and self.initial_location not in self.instructions:
            raise MinskyError(f"unknown initial location {self.initial_location!r}")
        if HALT in self.instructions:
            raise MinskyError("'halt' is reserved and cannot carry an instruction")
        for location, instruction in self.instructions.items():
            targets = (
                (instruction.next_location,)
                if isinstance(instruction, Inc)
                else (instruction.next_nonzero, instruction.next_zero)
            )
            for target in targets:
                if target != HALT and target not in self.instructions:
                    raise MinskyError(
                        f"instruction at {location!r} jumps to unknown "
                        f"location {target!r}"
                    )
            if instruction.counter not in self.counters:
                raise MinskyError(
                    f"instruction at {location!r} uses undeclared counter "
                    f"{instruction.counter!r}"
                )

    # ------------------------------------------------------------------
    # Direct simulation (the reference the encoding is checked against)
    # ------------------------------------------------------------------

    def step(
        self, location: str, counters: Mapping[str, int]
    ) -> Tuple[str, Dict[str, int]]:
        """One machine step from ``(location, counters)``."""
        if location == HALT:
            return location, dict(counters)
        instruction = self.instructions[location]
        values = dict(counters)
        if isinstance(instruction, Inc):
            values[instruction.counter] = values.get(instruction.counter, 0) + 1
            return instruction.next_location, values
        if values.get(instruction.counter, 0) > 0:
            values[instruction.counter] -= 1
            return instruction.next_nonzero, values
        return instruction.next_zero, values

    def run(
        self,
        initial_counters: Optional[Mapping[str, int]] = None,
        max_steps: int = 100_000,
        tracer=None,
    ) -> Optional[Dict[str, int]]:
        """Run to halt; returns final counters, or ``None`` on step budget
        exhaustion (divergence)."""
        if tracer is None:
            from ..obs import Tracer

            tracer = Tracer()
        location = self.initial_location
        counters = {name: 0 for name in self.counters}
        counters.update(initial_counters or {})
        with tracer.span(
            "minsky.run", locations=len(self.instructions), max_steps=max_steps
        ) as span:
            for step in range(max_steps):
                if location == HALT:
                    span.set(steps=step, halted=True)
                    return counters
                location, counters = self.step(location, counters)
            span.set(steps=max_steps, halted=False)
        return None

    def trace(
        self,
        initial_counters: Optional[Mapping[str, int]] = None,
        max_steps: int = 10_000,
    ) -> List[Tuple[str, Dict[str, int]]]:
        """The configuration sequence (bounded by *max_steps*)."""
        location = self.initial_location
        counters = {name: 0 for name in self.counters}
        counters.update(initial_counters or {})
        result = [(location, dict(counters))]
        for _ in range(max_steps):
            if location == HALT:
                break
            location, counters = self.step(location, counters)
            result.append((location, dict(counters)))
        return result

    def __repr__(self) -> str:
        return (
            f"CounterMachine(locations={len(self.instructions)}, "
            f"counters={list(self.counters)})"
        )


# ----------------------------------------------------------------------
# A small standard library of machines (tests, examples, benchmarks)
# ----------------------------------------------------------------------


def adder_machine() -> CounterMachine:
    """Compute ``b := a + b``: drain ``a`` into ``b``, then halt."""
    return CounterMachine(
        instructions={
            "l0": DecJz("a", next_nonzero="l1", next_zero=HALT),
            "l1": Inc("b", next_location="l0"),
        },
        initial_location="l0",
    )


def doubler_machine() -> CounterMachine:
    """Compute ``b := 2·a`` (destroys ``a``)."""
    return CounterMachine(
        instructions={
            "l0": DecJz("a", next_nonzero="l1", next_zero=HALT),
            "l1": Inc("b", next_location="l2"),
            "l2": Inc("b", next_location="l0"),
        },
        initial_location="l0",
    )


def busy_loop_machine() -> CounterMachine:
    """Never halts: endlessly increments and decrements ``a``."""
    return CounterMachine(
        instructions={
            "l0": Inc("a", next_location="l1"),
            "l1": DecJz("a", next_nonzero="l0", next_zero="l0"),
        },
        initial_location="l0",
    )


def zero_test_machine() -> CounterMachine:
    """Halts with ``flag = 1`` iff ``a`` starts at zero."""
    return CounterMachine(
        instructions={
            "l0": DecJz("a", next_nonzero=HALT, next_zero="l1"),
            "l1": Inc("flag", next_location=HALT),
        },
        initial_location="l0",
        counters=("a", "flag"),
    )
