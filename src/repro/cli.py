"""``rpcheck`` — command-line analysis of RP programs.

The stand-in for the tool layer the paper describes ("software tools for
the analysis of RP programs … connected to the RP compiler"): parse a
program, compile it to its scheme, and run the Section 3 analyses.

Usage::

    rpcheck PROGRAM.rp                  # full report
    rpcheck PROGRAM.rp --dot out.dot    # also emit the scheme as DOT
    rpcheck PROGRAM.rp --node q5        # node reachability for one node
    rpcheck PROGRAM.rp --mutex q1,q2    # mutual exclusion of two nodes
    rpcheck PROGRAM.rp --run            # execute (fully concrete programs)
    rpcheck PROGRAM.rp --trace t.jsonl  # record a span trace (JSONL)
    rpcheck PROGRAM.rp --metrics m.json # dump the metrics registry as JSON
    rpcheck PROGRAM.rp --deadline 5     # wall-clock budget (seconds)
    rpcheck PROGRAM.rp --mem-limit 512  # memory budget (MiB)
    rpcheck PROGRAM.rp --checkpoint c.json   # save resumable state
    rpcheck PROGRAM.rp --resume c.json       # continue a saved run
    rpcheck report t.jsonl              # self-time tree + hot spans

Budgeted runs degrade gracefully: when the deadline or memory ceiling is
hit, finished analyses keep their verdicts, unfinished ones report
``inconclusive``, and ``--checkpoint`` captures the explored prefix so a
later ``--resume`` run continues instead of restarting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import AnalysisSession, analyze, mutually_exclusive, node_reachable
from .core.dot import scheme_to_dot
from .errors import AnalysisBudgetExceeded, RPError
from .interp import run_program
from .lang import compile_source
from .obs import JsonlSink, Tracer, load_records, render_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck",
        description="analyse recursive-parallel (RP) programs",
    )
    parser.add_argument("program", help="path to an RP source file ('-' for stdin)")
    parser.add_argument("--dot", metavar="FILE", help="write the scheme as DOT")
    parser.add_argument("--node", metavar="NODE", help="check node reachability")
    parser.add_argument(
        "--mutex", metavar="A,B", help="check mutual exclusion of two nodes"
    )
    parser.add_argument(
        "--run", action="store_true", help="execute a fully concrete program"
    )
    parser.add_argument(
        "--races",
        action="store_true",
        help="report write conflicts per global variable (§5.3)",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="report the effect of the scheme optimiser",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the scheme as JSON"
    )
    parser.add_argument(
        "--lint", action="store_true", help="run the static lints"
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=20_000,
        metavar="N",
        help="state budget for the semi-decision procedures (default 20000)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the analysis session's counters (states, caches, timings)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a span/event trace of the analyses as JSONL "
        "(inspect with 'rpcheck report FILE')",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the session's metrics registry as JSON",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; analyses left unfinished when it expires "
        "are reported inconclusive instead of running on",
    )
    parser.add_argument(
        "--mem-limit",
        type=float,
        metavar="MIB",
        help="memory ceiling in MiB (sampled periodically during analysis)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a resumable snapshot of the explored state space after "
        "the run (finished or not)",
    )
    parser.add_argument(
        "--resume",
        metavar="FILE",
        help="continue from a snapshot written by --checkpoint "
        "(the program must compile to the same scheme)",
    )
    return parser


def _build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck report",
        description="summarise a JSONL trace: self-time tree and hot spans",
    )
    parser.add_argument("trace", help="path to a trace written by --trace")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="how many hot spans to list (default 10)",
    )
    return parser


def _report_main(argv: List[str]) -> int:
    args = _build_report_parser().parse_args(argv)
    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as error:
        print(f"rpcheck report: {error}", file=sys.stderr)
        return 2
    print(render_report(records, top=args.top))
    return 0


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _verdict_line(name: str, verdict) -> str:
    answer = "yes" if verdict.holds else "no"
    exactness = "" if verdict.exact else " (replay-verified, not a proof)"
    return f"  {name:<18} {answer:<4} [{verdict.method}]{exactness}"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        source = _read_source(args.program)
    except OSError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2
    try:
        compiled = compile_source(source)
    except RPError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2
    scheme = compiled.scheme
    print(f"program   : {scheme.name}")
    print(f"nodes     : {len(scheme)}  (procedures: {', '.join(scheme.procedures)})")
    print(f"alphabet  : {', '.join(scheme.alphabet()) or '(none)'}")

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(scheme_to_dot(scheme))
        print(f"dot       : written to {args.dot}")

    try:
        tracer = Tracer(JsonlSink(args.trace)) if args.trace else Tracer()
    except OSError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2

    budget = None
    if args.deadline is not None or args.mem_limit is not None:
        from .robust import Budget

        budget = Budget(
            deadline=args.deadline,
            max_memory_bytes=(
                int(args.mem_limit * 1024 * 1024)
                if args.mem_limit is not None
                else None
            ),
            on_exhaust="partial",
        )

    # one session for the whole invocation: the report, --node and --mutex
    # all share a single exploration of the scheme's reachable fragment
    if args.resume:
        from .robust import CheckpointError, load_checkpoint

        try:
            session = AnalysisSession.restore(
                load_checkpoint(args.resume), scheme=scheme, tracer=tracer
            )
        except (CheckpointError, RPError) as error:
            print(f"rpcheck: cannot resume from {args.resume}: {error}",
                  file=sys.stderr)
            return 2
        print(
            f"resumed   : {args.resume} "
            f"({len(session.graph)} states, {session.expanded_count} expanded)"
        )
    else:
        session = AnalysisSession(scheme, tracer=tracer)
    root_span = tracer.span("rpcheck", program=scheme.name)
    root_span.__enter__()
    report = analyze(
        scheme, max_states=args.max_states, session=session, budget=budget
    )
    print(f"wait-free : {'yes' if report.wait_free else 'no'}")
    print("analyses:")
    # skip the scheme/nodes/wait-free header lines the report duplicates
    print("\n".join(report.render().splitlines()[4:]))
    exit_code = 0 if report.conclusive else 1
    if budget is not None and budget.exhausted is not None:
        hint = " (checkpoint below resumes this run)" if args.checkpoint else ""
        print(
            f"budget    : {budget.exhausted} exhausted after "
            f"{budget.elapsed():.2f}s — partial results above{hint}"
        )
        exit_code = 1

    if args.node:
        try:
            verdict = node_reachable(
                scheme, args.node, max_states=args.max_states, session=session
            )
            print(_verdict_line(f"reach {args.node}", verdict))
        except (RPError, AnalysisBudgetExceeded) as error:
            print(f"  reach {args.node}: {error}")
            exit_code = 1

    if args.mutex:
        first, _, second = args.mutex.partition(",")
        try:
            verdict = mutually_exclusive(
                scheme,
                first.strip(),
                second.strip(),
                max_states=args.max_states,
                session=session,
            )
            print(_verdict_line(f"mutex {args.mutex}", verdict))
        except (RPError, AnalysisBudgetExceeded) as error:
            print(f"  mutex {args.mutex}: {error}")
            exit_code = 1

    if args.lint:
        from .lang.lint import lint

        findings = lint(compiled.program, compiled.scheme)
        print("lints:")
        if findings:
            for warning in findings:
                print(f"  {warning}")
        else:
            print("  (clean)")

    if args.json:
        from .core.serialize import scheme_to_json

        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(scheme_to_json(scheme))
        print(f"json      : written to {args.json}")

    if args.optimize:
        from .lang.optimize import optimize as optimize_scheme

        report = optimize_scheme(scheme)
        print("optimizer:")
        print(f"  dead nodes removed : {report.removed_dead}")
        print(f"  nodes merged       : {report.merged}")
        print(f"  size               : {len(scheme)} -> {len(report.scheme)}")

    if args.races:
        from .analysis.races import race_report

        report = race_report(compiled, max_states=args.max_states)
        print("write conflicts:")
        if not report.variables:
            print("  (no global-variable writers)")
        for entry in report.variables:
            if entry.is_safe:
                print(f"  {entry.variable:<12} safe "
                      f"(writers: {', '.join(entry.writer_nodes) or 'none'})")
            else:
                pairs = ", ".join(f"{a}~{b}" for (a, b), _ in entry.conflicts)
                print(f"  {entry.variable:<12} CONFLICTS: {pairs}")
                exit_code = 1

    root_span.__exit__(None, None, None)
    tracer.close()
    session.sync_metrics()

    if args.checkpoint:
        from .robust import CheckpointError, save_checkpoint

        try:
            save_checkpoint(session.checkpoint(), args.checkpoint)
            print(f"checkpoint: written to {args.checkpoint}")
        except (CheckpointError, OSError) as error:
            print(f"rpcheck: cannot write checkpoint: {error}", file=sys.stderr)
            exit_code = 1

    if args.stats:
        print("session stats:")
        for line in session.metrics.render().splitlines():
            print(f"  {line}")

    if args.metrics:
        try:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                json.dump(session.metrics.as_dict(), handle, indent=2, default=repr)
                handle.write("\n")
            print(f"metrics   : written to {args.metrics}")
        except OSError as error:
            print(f"rpcheck: {error}", file=sys.stderr)
            exit_code = 1

    if args.trace:
        print(f"trace     : written to {args.trace}")

    if args.run:
        try:
            memory, visible = run_program(compiled)
            print("execution:")
            print(f"  trace  : {' '.join(visible) or '(silent)'}")
            print(f"  memory : {dict(memory)!r}")
        except RPError as error:
            print(f"rpcheck: execution failed: {error}", file=sys.stderr)
            exit_code = 1

    return exit_code



if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
