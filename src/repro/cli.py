"""``rpcheck`` — command-line analysis of RP programs.

The stand-in for the tool layer the paper describes ("software tools for
the analysis of RP programs … connected to the RP compiler"): parse a
program, compile it to its scheme, and run the Section 3 analyses.

Usage::

    rpcheck PROGRAM.rp                  # full report
    rpcheck PROGRAM.rp --dot out.dot    # also emit the scheme as DOT
    rpcheck PROGRAM.rp --node q5        # node reachability for one node
    rpcheck PROGRAM.rp --mutex q1,q2    # mutual exclusion of two nodes
    rpcheck PROGRAM.rp --run            # execute (fully concrete programs)
    rpcheck PROGRAM.rp --trace t.jsonl  # record a span trace (JSONL)
    rpcheck PROGRAM.rp --metrics m.json # dump the metrics registry as JSON
    rpcheck PROGRAM.rp --deadline 5     # wall-clock budget (seconds)
    rpcheck PROGRAM.rp --mem-limit 512  # memory budget (MiB)
    rpcheck PROGRAM.rp --checkpoint c.json   # save resumable state
    rpcheck PROGRAM.rp --resume c.json       # continue a saved run
    rpcheck PROGRAM.rp --ledger runs.jsonl   # append this run to a ledger
    rpcheck PROGRAM.rp --workers 4           # sharded parallel exploration
    rpcheck serve --socket /tmp/rp.sock      # warm-session analysis daemon
    rpcheck client --socket /tmp/rp.sock boundedness --file PROGRAM.rp
    rpcheck report t.jsonl              # self-time tree + hot spans
    rpcheck report t.jsonl --format json     # machine-readable span tree
    rpcheck timeline t.jsonl            # per-worker gantt of a sharded run
    rpcheck timeline t.jsonl -o t.svg        # same, as a standalone SVG
    rpcheck history --ledger runs.jsonl      # tail/filter the run ledger
    rpcheck history --compact 50             # keep newest 50 runs per scheme
    rpcheck diff RUN_A RUN_B --ledger runs.jsonl  # compare two runs
    rpcheck flamegraph t.jsonl          # collapsed stacks for flamegraph.pl
    rpcheck flamegraph P.rp --sample 97 # sampling-profiler flamegraph
    rpcheck dashboard -o out.html       # self-contained ledger dashboard

Budgeted runs degrade gracefully: when the deadline or memory ceiling is
hit, finished analyses keep their verdicts, unfinished ones report
``inconclusive``, and ``--checkpoint`` captures the explored prefix so a
later ``--resume`` run continues instead of restarting.

Every analysis run carries a **flight recorder** — a bounded ring buffer
of recent spans/events.  With a ledger configured (``--ledger`` or the
``RPCHECK_LEDGER`` environment variable), the run is appended to the
append-only ``rpcheck-ledger/1`` history, and any incident — budget
exhaustion, detected corruption, an unexpected crash — dumps a
``rpcheck-flight/1`` diagnostic bundle next to the ledger.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .analysis import AnalysisSession
from .api import AnalysisRequest, execute
from .core.dot import scheme_to_dot
from .errors import RPError
from .interp import run_program
from .lang import compile_source
from .obs import (
    FlightRecorder,
    JsonlSink,
    Ledger,
    LedgerSink,
    TeeSink,
    Tracer,
    default_ledger_path,
    diff_entries,
    load_records,
    render_diff,
    render_report,
    report_as_dict,
    resolve_entry,
    scheme_fingerprint,
)
from .obs.diff import DEFAULT_SPAN_FLOOR_SECONDS, DEFAULT_SPAN_THRESHOLD_PCT
from .obs.export import OTLP_ENV, OtlpJsonSink
from .obs.ledger import DEFAULT_LEDGER_NAME
from .obs.report import build_tree, collapse_stacks


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck",
        description="analyse recursive-parallel (RP) programs",
        epilog="subcommands: rpcheck serve | client | report | timeline | "
        "history | diff | flamegraph | dashboard (each accepts --help)",
    )
    parser.add_argument("program", help="path to an RP source file ('-' for stdin)")
    parser.add_argument("--dot", metavar="FILE", help="write the scheme as DOT")
    parser.add_argument("--node", metavar="NODE", help="check node reachability")
    parser.add_argument(
        "--mutex", metavar="A,B", help="check mutual exclusion of two nodes"
    )
    parser.add_argument(
        "--run", action="store_true", help="execute a fully concrete program"
    )
    parser.add_argument(
        "--races",
        action="store_true",
        help="report write conflicts per global variable (§5.3)",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="report the effect of the scheme optimiser",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the scheme as JSON"
    )
    parser.add_argument(
        "--lint", action="store_true", help="run the static lints"
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=20_000,
        metavar="N",
        help="state budget for the semi-decision procedures (default 20000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="exploration worker processes (default 1 = sequential; N>1 "
        "shards successor computation across a multiprocessing pool with "
        "identical verdicts — see docs/performance.md)",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        default=None,
        metavar="N",
        help="worker respawns tolerated before a sharded run degrades to "
        "sequential exploration (default: engine default; see "
        "docs/robustness.md)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the analysis session's counters (states, caches, timings)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a span/event trace of the analyses as JSONL "
        "(inspect with 'rpcheck report FILE')",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "otlp"),
        default="jsonl",
        help="format of the --trace file: native JSONL records (jsonl, "
        "default) or OTLP/JSON export requests (otlp) for standard "
        "collectors",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the session's metrics registry as JSON",
    )
    parser.add_argument(
        "--ledger",
        metavar="FILE",
        help="append this run to an rpcheck-ledger/1 JSONL run history "
        "(default: the RPCHECK_LEDGER environment variable); incidents "
        "dump flight-recorder bundles next to the ledger",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; analyses left unfinished when it expires "
        "are reported inconclusive instead of running on",
    )
    parser.add_argument(
        "--mem-limit",
        type=float,
        metavar="MIB",
        help="memory ceiling in MiB (sampled periodically during analysis)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a resumable snapshot of the explored state space after "
        "the run (finished or not)",
    )
    parser.add_argument(
        "--resume",
        metavar="FILE",
        help="continue from a snapshot written by --checkpoint "
        "(the program must compile to the same scheme)",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommands: report / history / diff / flamegraph
# ----------------------------------------------------------------------


def _build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck report",
        description="summarise a JSONL trace: self-time tree and hot spans",
    )
    parser.add_argument("trace", help="path to a trace written by --trace")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="how many hot spans to list (default 10)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human tree (text) or the rpcheck-report/1 "
        "JSON payload (json)",
    )
    return parser


def _report_main(argv: List[str]) -> int:
    args = _build_report_parser().parse_args(argv)
    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as error:
        print(f"rpcheck report: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report_as_dict(records, top=args.top), indent=2,
                         default=repr))
    else:
        print(render_report(records, top=args.top))
    return 0


def _build_timeline_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck timeline",
        description="per-worker gantt/waterfall of a sharded exploration "
        "trace: window critical path, steal counts, straggler and "
        "imbalance attribution (needs a --trace recorded with --workers>1)",
    )
    parser.add_argument("trace", help="path to a trace written by --trace")
    parser.add_argument(
        "-o",
        "--out",
        metavar="FILE",
        help="write a standalone SVG to FILE instead of the terminal view",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the rpcheck-timeline/1 JSON payload instead",
    )
    parser.add_argument(
        "--width",
        type=int,
        default=72,
        metavar="COLS",
        help="terminal gantt width in columns (default 72)",
    )
    return parser


def _timeline_main(argv: List[str]) -> int:
    from .obs.timeline import (
        build_timeline,
        render_timeline_svg,
        render_timeline_text,
        timeline_as_dict,
    )

    args = _build_timeline_parser().parse_args(argv)
    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as error:
        print(f"rpcheck timeline: {error}", file=sys.stderr)
        return 2
    timeline = build_timeline(records)
    if not timeline.windows:
        print(
            "rpcheck timeline: no parallel.window spans in "
            f"{args.trace} (record the trace with --workers > 1)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(timeline_as_dict(timeline), indent=2, default=repr))
        return 0
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(render_timeline_svg(timeline, standalone=True))
        except OSError as error:
            print(f"rpcheck timeline: {error}", file=sys.stderr)
            return 2
        print(
            f"timeline: {len(timeline.windows)} windows across "
            f"{len(timeline.workers)} workers written to {args.out}"
        )
        return 0
    print(render_timeline_text(timeline, width=args.width))
    return 0


def _ledger_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        metavar="FILE",
        help="the run-ledger file (default: $RPCHECK_LEDGER, then "
        f"./{DEFAULT_LEDGER_NAME})",
    )


def _open_ledger(path_arg: Optional[str]) -> Ledger:
    return Ledger(default_ledger_path(path_arg) or DEFAULT_LEDGER_NAME)


def _build_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck history",
        description="tail and filter the rpcheck-ledger/1 run history",
    )
    _ledger_argument(parser)
    parser.add_argument("--scheme", metavar="NAME", help="only runs of this scheme")
    parser.add_argument("--kind", metavar="KIND", help="only runs of this kind")
    parser.add_argument(
        "--procedure", metavar="NAME", help="only runs answering this procedure"
    )
    parser.add_argument(
        "--tail", type=int, default=20, metavar="N",
        help="show the last N matching runs (default 20; 0 = all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print matching entries as JSON lines"
    )
    parser.add_argument(
        "--compact",
        type=int,
        metavar="N",
        help="retention: rewrite the ledger keeping only the newest N "
        "entries per scheme fingerprint (atomic in-place rewrite), then "
        "exit; combines with no other option",
    )
    return parser


def _verdict_digest(entry: dict) -> str:
    parts = []
    for name, block in sorted((entry.get("procedures") or {}).items()):
        parts.append(f"{name}={block.get('verdict')}")
    return " ".join(parts) or "-"


def _history_main(argv: List[str]) -> int:
    args = _build_history_parser().parse_args(argv)
    ledger = _open_ledger(args.ledger)
    if args.compact is not None:
        if args.compact < 1:
            print("rpcheck history: --compact needs a positive N", file=sys.stderr)
            return 2
        try:
            kept, dropped = ledger.compact(args.compact)
        except (OSError, ValueError) as error:
            print(f"rpcheck history: {error}", file=sys.stderr)
            return 2
        print(
            f"compacted {ledger.path}: kept {kept} "
            f"(newest {args.compact} per scheme), dropped {dropped}"
        )
        return 0
    try:
        entries = ledger.filter(
            kind=args.kind, scheme=args.scheme, procedure=args.procedure
        )
    except (OSError, ValueError) as error:
        print(f"rpcheck history: {error}", file=sys.stderr)
        return 2
    if args.tail > 0:
        entries = entries[-args.tail:]
    if not entries:
        print(f"(no matching runs in {ledger.path})")
        return 0
    if args.json:
        for entry in entries:
            print(json.dumps(entry, separators=(",", ":"), default=repr))
        return 0
    for entry in entries:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(entry.get("timestamp", 0))
        )
        scheme = (entry.get("scheme") or {}).get("name") or "-"
        wall = (entry.get("totals") or {}).get("wall_seconds")
        wall_text = f"{wall:8.3f}s" if isinstance(wall, (int, float)) else "       -"
        print(
            f"{entry.get('run_id'):<28} {stamp}  {entry.get('kind', '-'):<8} "
            f"{scheme:<18} {entry.get('outcome', '-'):<9} {wall_text}  "
            f"{_verdict_digest(entry)}"
        )
    return 0


def _build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck diff",
        description="compare two ledger runs: verdict drift, metric deltas, "
        "per-span self-time deltas",
    )
    parser.add_argument("run_a", help="run id, unique prefix, or ledger index")
    parser.add_argument("run_b", help="run id, unique prefix, or ledger index")
    _ledger_argument(parser)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_SPAN_THRESHOLD_PCT,
        metavar="PCT",
        help="span self-time noise threshold in percent "
        f"(default {DEFAULT_SPAN_THRESHOLD_PCT:g})",
    )
    parser.add_argument(
        "--floor-ms",
        type=float,
        default=DEFAULT_SPAN_FLOOR_SECONDS * 1000,
        metavar="MS",
        help="spans faster than this on both sides are never flagged "
        f"(default {DEFAULT_SPAN_FLOOR_SECONDS * 1000:g}ms)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the structured diff as JSON"
    )
    return parser


def _diff_main(argv: List[str]) -> int:
    args = _build_diff_parser().parse_args(argv)
    ledger = _open_ledger(args.ledger)
    try:
        entries = ledger.entries()
        entry_a = resolve_entry(entries, args.run_a)
        entry_b = resolve_entry(entries, args.run_b)
    except (OSError, ValueError) as error:
        print(f"rpcheck diff: {error}", file=sys.stderr)
        return 2
    diff = diff_entries(
        entry_a,
        entry_b,
        span_threshold_pct=args.threshold,
        span_floor_seconds=args.floor_ms / 1000.0,
    )
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, default=repr))
    else:
        print(render_diff(diff))
    return 0 if diff.clean else 1


def _build_flamegraph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck flamegraph",
        description="export collapsed stacks (flamegraph.pl / speedscope "
        "input; values in µs) — from a recorded JSONL trace, or, with "
        "--sample, by profiling a fresh analysis of an RP program",
    )
    parser.add_argument(
        "trace",
        help="path to a trace written by --trace (or, with --sample, "
        "an RP program to analyse under the sampling profiler)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write to FILE instead of stdout"
    )
    parser.add_argument(
        "--sample",
        type=int,
        metavar="HZ",
        help="sample Python stacks at HZ while running the full analysis "
        "battery on the program (SIGPROF timer, thread fallback) instead "
        "of collapsing recorded spans",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=20_000,
        metavar="N",
        help="state budget for the profiled analyses (with --sample)",
    )
    return parser


def _sampled_stacks(args) -> List[str]:
    """Run the analysis battery under the sampling profiler."""
    from .obs.profiler import SamplingProfiler

    compiled = compile_source(_read_source(args.trace))
    scheme = compiled.scheme
    profiler = SamplingProfiler(hz=args.sample)
    with profiler:
        session = AnalysisSession(scheme)
        request = AnalysisRequest(
            procedure="analyze",
            fingerprint=scheme_fingerprint(scheme),
            params={"max_states": args.max_states},
        )
        execute(request, scheme=scheme, session=session)
        session.close()
    stats = profiler.stats()
    print(
        f"flamegraph: sampled {stats['samples']} stacks at {args.sample}Hz "
        f"({stats['mode']} mode) over {stats['elapsed_seconds']:.2f}s",
        file=sys.stderr,
    )
    return profiler.collapsed()


def _flamegraph_main(argv: List[str]) -> int:
    args = _build_flamegraph_parser().parse_args(argv)
    try:
        if args.sample:
            lines = _sampled_stacks(args)
        else:
            lines = collapse_stacks(build_tree(load_records(args.trace)))
    except (OSError, ValueError, RPError) as error:
        print(f"rpcheck flamegraph: {error}", file=sys.stderr)
        return 2
    text = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as error:
            print(f"rpcheck flamegraph: {error}", file=sys.stderr)
            return 2
        print(f"flamegraph: {len(lines)} stacks written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _build_dashboard_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpcheck dashboard",
        description="render the run ledger as one self-contained HTML file "
        "(inline SVG/CSS, no scripts, no network fetches)",
    )
    _ledger_argument(parser)
    parser.add_argument(
        "-o",
        "--out",
        default="rpcheck-dashboard.html",
        metavar="FILE",
        help="output HTML path (default rpcheck-dashboard.html)",
    )
    parser.add_argument(
        "--scheme", metavar="NAME", help="only runs of this scheme"
    )
    parser.add_argument("--kind", metavar="KIND", help="only runs of this kind")
    parser.add_argument(
        "--tail",
        type=int,
        default=200,
        metavar="N",
        help="render the last N matching runs (default 200; 0 = all)",
    )
    parser.add_argument(
        "--title", default="rpcheck run ledger", help="page title"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="also embed a worker-timeline section rendered from this "
        "JSONL trace (see 'rpcheck timeline')",
    )
    return parser


def _dashboard_main(argv: List[str]) -> int:
    from .obs.dashboard import render_dashboard

    args = _build_dashboard_parser().parse_args(argv)
    ledger = _open_ledger(args.ledger)
    try:
        entries = ledger.filter(kind=args.kind, scheme=args.scheme)
    except (OSError, ValueError) as error:
        print(f"rpcheck dashboard: {error}", file=sys.stderr)
        return 2
    if args.tail > 0:
        entries = entries[-args.tail:]
    timeline_svg = None
    if args.trace:
        from .obs.timeline import build_timeline, render_timeline_svg

        try:
            timeline = build_timeline(load_records(args.trace))
        except (OSError, ValueError) as error:
            print(f"rpcheck dashboard: {error}", file=sys.stderr)
            return 2
        if timeline.windows:
            timeline_svg = render_timeline_svg(timeline)
        else:
            print(
                f"dashboard: no parallel.window spans in {args.trace}; "
                "timeline section skipped"
            )
    page = render_dashboard(
        entries,
        title=args.title,
        source=ledger.path,
        timeline_svg=timeline_svg,
    )
    try:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(page)
    except OSError as error:
        print(f"rpcheck dashboard: {error}", file=sys.stderr)
        return 2
    print(
        f"dashboard: {len(entries)} runs from {ledger.path} "
        f"rendered to {args.out}"
    )
    return 0


def _serve_main(argv: List[str]) -> int:
    from .serve import serve_main  # deferred: pulls in asyncio machinery

    return serve_main(argv)


def _client_main(argv: List[str]) -> int:
    from .serve import client_main

    return client_main(argv)


_SUBCOMMANDS = {
    "report": _report_main,
    "timeline": _timeline_main,
    "history": _history_main,
    "diff": _diff_main,
    "flamegraph": _flamegraph_main,
    "dashboard": _dashboard_main,
    "serve": _serve_main,
    "client": _client_main,
}


# ----------------------------------------------------------------------
# The analysis command
# ----------------------------------------------------------------------


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _summary_line(name: str, summary: dict) -> str:
    """Render one :func:`~repro.obs.ledger.verdict_summary` block."""
    verdict = summary.get("verdict")
    if verdict in ("yes", "no"):
        exactness = "" if summary.get("exact") else " (replay-verified, not a proof)"
        return f"  {name:<18} {verdict:<4} [{summary.get('method')}]{exactness}"
    if verdict == "partial":
        return f"  {name:<18} unknown [{summary.get('resource')} exhausted]"
    return f"  {name:<18} {verdict}"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        source = _read_source(args.program)
    except OSError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2
    try:
        compiled = compile_source(source)
    except RPError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2
    scheme = compiled.scheme
    print(f"program   : {scheme.name}")
    print(f"nodes     : {len(scheme)}  (procedures: {', '.join(scheme.procedures)})")
    print(f"alphabet  : {', '.join(scheme.alphabet()) or '(none)'}")

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(scheme_to_dot(scheme))
        print(f"dot       : written to {args.dot}")

    # sink composition: the flight recorder is always on; a --trace file
    # and a --ledger aggregation sink join it on one tee
    recorder = FlightRecorder()
    sinks = [recorder]
    otlp_sink = None
    try:
        if args.trace:
            if args.trace_format == "otlp":
                otlp_sink = OtlpJsonSink(args.trace)
                sinks.append(otlp_sink)
            else:
                sinks.append(JsonlSink(args.trace))
        # RPCHECK_OTLP ships telemetry to a collector (file path or
        # http(s) endpoint) without touching the command line
        otlp_target = os.environ.get(OTLP_ENV)
        if otlp_target and otlp_sink is None:
            otlp_sink = OtlpJsonSink(otlp_target)
            sinks.append(otlp_sink)
    except OSError as error:
        print(f"rpcheck: {error}", file=sys.stderr)
        return 2
    ledger_path = default_ledger_path(args.ledger)
    ledger_sink = None
    if ledger_path:
        ledger_sink = LedgerSink(Ledger(ledger_path), kind="analysis")
        sinks.append(ledger_sink)
        # incidents (budget exhaustion, corruption, crashes) dump their
        # diagnostic bundles next to the ledger
        recorder.dump_dir = os.path.dirname(os.path.abspath(ledger_path))
    tracer = Tracer(sinks[0] if len(sinks) == 1 else TeeSink(sinks))

    budget = None
    if args.deadline is not None or args.mem_limit is not None:
        from .robust import Budget

        budget = Budget(
            deadline=args.deadline,
            max_memory_bytes=(
                int(args.mem_limit * 1024 * 1024)
                if args.mem_limit is not None
                else None
            ),
            on_exhaust="partial",
        )

    # one session for the whole invocation: the report, --node and --mutex
    # all share a single exploration of the scheme's reachable fragment
    if args.resume:
        from .robust import CheckpointError, load_checkpoint

        try:
            session = AnalysisSession.restore(
                load_checkpoint(args.resume), scheme=scheme, tracer=tracer,
                workers=args.workers,
                max_worker_restarts=args.max_worker_restarts,
            )
        except (CheckpointError, RPError) as error:
            print(f"rpcheck: cannot resume from {args.resume}: {error}",
                  file=sys.stderr)
            return 2
        print(
            f"resumed   : {args.resume} "
            f"({len(session.graph)} states, {session.expanded_count} expanded)"
        )
    else:
        session = AnalysisSession(
            scheme, tracer=tracer, workers=args.workers,
            max_worker_restarts=args.max_worker_restarts,
        )

    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    procedures: dict = {}
    outcome, run_error, exit_code = "error", None, 3
    try:
        exit_code = _run_analyses(
            args, compiled, scheme, session, tracer, budget, procedures
        )
        outcome = "partial" if budget is not None and budget.exhausted else "ok"
    except Exception as error:
        # post-mortem path: dump a diagnostic bundle (target permitting)
        # and leave an error entry in the ledger before reporting
        from .obs import record_incident

        bundle = record_incident(
            session, error, reason=f"rpcheck crashed: {type(error).__name__}"
        )
        run_error = error
        print(f"rpcheck: analysis failed: {error}", file=sys.stderr)
        if bundle:
            print(f"rpcheck: flight-recorder bundle: {bundle}", file=sys.stderr)
        if not isinstance(error, RPError):
            raise
    finally:
        if ledger_sink is not None:
            try:
                from .api import worker_expansions

                metrics_snapshot = session.metrics.as_dict()
                extra = {"workers": args.workers}
                expansions = worker_expansions(metrics_snapshot)
                if expansions:
                    extra["worker_expansions"] = expansions
                restarts = metrics_snapshot.get("parallel.worker_restarts", {})
                if restarts.get("value"):
                    extra["worker_restarts"] = int(restarts["value"])
                if metrics_snapshot.get("parallel.degraded", {}).get("value"):
                    extra["parallel_degraded"] = True
                entry = ledger_sink.finish(
                    scheme=scheme,
                    procedures=procedures,
                    metrics=metrics_snapshot,
                    budget=budget,
                    outcome=outcome,
                    error=run_error,
                    checkpoint=args.checkpoint,
                    wall_seconds=time.perf_counter() - started_wall,
                    cpu_seconds=time.process_time() - started_cpu,
                    extra=extra,
                )
                print(f"ledger    : appended {entry['run_id']} to {ledger_path}")
            except (OSError, ValueError) as ledger_error:
                print(f"rpcheck: cannot append ledger entry: {ledger_error}",
                      file=sys.stderr)
        if otlp_sink is not None:
            # one cumulative metrics snapshot rides along with the spans
            otlp_sink.export_metrics(session.metrics)
        session.close()
        tracer.close()
    return exit_code


def _run_analyses(
    args, compiled, scheme, session, tracer, budget, procedures: dict
) -> int:
    """The analysis body of ``main`` (extracted for post-mortem wrapping).

    Fills *procedures* with verdict objects as queries complete, so the
    ledger entry reflects exactly the answers that were reached even when
    a later step dies.
    """
    with tracer.span("rpcheck", program=scheme.name):
        return _run_analyses_body(
            args, compiled, scheme, session, budget, procedures
        )


def _query(args, procedure: str, fingerprint, scheme, session, budget, **params):
    """One :func:`repro.api.execute` call sharing the CLI's session/budget."""
    request = AnalysisRequest(
        procedure=procedure,
        fingerprint=fingerprint,
        params={"max_states": args.max_states, **params},
    )
    return execute(
        request, scheme=scheme, session=session, budget=budget
    )


def _print_query(name: str, response, procedures: dict, key: str) -> int:
    """Print one query response; returns its contribution to the exit code."""
    summary = next(iter(response.procedures.values()), None)
    procedures[key] = summary
    if response.error is not None:
        print(f"  {name}: {response.error['message']}")
        return 1
    if response.verdict == "inconclusive":
        print(f"  {name}: {response.details.get('message', 'inconclusive')}")
        return 1
    print(_summary_line(name, summary or {"verdict": response.verdict}))
    return 0


def _run_analyses_body(
    args, compiled, scheme, session, budget, procedures: dict
) -> int:
    # the CLI is a thin adapter over repro.api.execute — the same
    # evaluation path the serve daemon and library callers use
    fingerprint = scheme_fingerprint(scheme)
    battery = _query(args, "analyze", fingerprint, scheme, session, budget)
    if battery.error is not None:
        raise RPError(battery.error["message"])
    procedures.update(battery.procedures)
    print(f"wait-free : {'yes' if battery.details.get('wait_free') else 'no'}")
    print("analyses:")
    # skip the scheme/nodes/wait-free header lines the report duplicates
    print("\n".join(battery.details.get("render", "").splitlines()[4:]))
    exit_code = 0 if battery.verdict == "conclusive" else 1
    if budget is not None and budget.exhausted is not None:
        hint = " (checkpoint below resumes this run)" if args.checkpoint else ""
        print(
            f"budget    : {budget.exhausted} exhausted after "
            f"{budget.elapsed():.2f}s — partial results above{hint}"
        )
        exit_code = 1

    if args.node:
        response = _query(
            args, "node_reachable", fingerprint, scheme, session, budget,
            node=args.node,
        )
        exit_code |= _print_query(
            f"reach {args.node}", response, procedures, f"reach:{args.node}"
        )

    if args.mutex:
        first, _, second = args.mutex.partition(",")
        response = _query(
            args, "mutually_exclusive", fingerprint, scheme, session, budget,
            first=first.strip(), second=second.strip(),
        )
        exit_code |= _print_query(
            f"mutex {args.mutex}", response, procedures, f"mutex:{args.mutex}"
        )

    if args.lint:
        from .lang.lint import lint

        findings = lint(compiled.program, compiled.scheme)
        print("lints:")
        if findings:
            for warning in findings:
                print(f"  {warning}")
        else:
            print("  (clean)")

    if args.json:
        from .core.serialize import scheme_to_json

        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(scheme_to_json(scheme))
        print(f"json      : written to {args.json}")

    if args.optimize:
        from .lang.optimize import optimize as optimize_scheme

        opt_report = optimize_scheme(scheme)
        print("optimizer:")
        print(f"  dead nodes removed : {opt_report.removed_dead}")
        print(f"  nodes merged       : {opt_report.merged}")
        print(f"  size               : {len(scheme)} -> {len(opt_report.scheme)}")

    if args.races:
        from .analysis.races import race_report

        races = race_report(compiled, max_states=args.max_states)
        print("write conflicts:")
        if not races.variables:
            print("  (no global-variable writers)")
        for entry in races.variables:
            if entry.is_safe:
                print(f"  {entry.variable:<12} safe "
                      f"(writers: {', '.join(entry.writer_nodes) or 'none'})")
            else:
                pairs = ", ".join(f"{a}~{b}" for (a, b), _ in entry.conflicts)
                print(f"  {entry.variable:<12} CONFLICTS: {pairs}")
                exit_code = 1

    session.sync_metrics()

    if args.checkpoint:
        from .robust import CheckpointError, save_checkpoint

        try:
            save_checkpoint(session.checkpoint(), args.checkpoint)
            print(f"checkpoint: written to {args.checkpoint}")
        except (CheckpointError, OSError) as error:
            print(f"rpcheck: cannot write checkpoint: {error}", file=sys.stderr)
            exit_code = 1

    if args.stats:
        print("session stats:")
        for line in session.metrics.render().splitlines():
            print(f"  {line}")

    if args.metrics:
        try:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                json.dump(session.metrics.as_dict(), handle, indent=2, default=repr)
                handle.write("\n")
            print(f"metrics   : written to {args.metrics}")
        except OSError as error:
            print(f"rpcheck: {error}", file=sys.stderr)
            exit_code = 1

    if args.trace:
        print(f"trace     : written to {args.trace}")

    if args.run:
        try:
            memory, visible = run_program(compiled)
            print("execution:")
            print(f"  trace  : {' '.join(visible) or '(silent)'}")
            print(f"  memory : {dict(memory)!r}")
        except RPError as error:
            print(f"rpcheck: execution failed: {error}", file=sys.stderr)
            exit_code = 1

    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
