"""Lexer for the RP language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer literals, identifiers (with a trailing-prime convention for action
names like ``a1'``), keywords and the operator set of
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    ":=": TokenKind.ASSIGN,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
}

_ONE_CHAR = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Single-pass lexer producing a list of tokens (EOF-terminated)."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        """Tokenise the whole source."""
        result: List[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.position]
        self.position += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_column = self.line, self.column
                self._advance()
                self._advance()
                while True:
                    if self.position >= len(self.source):
                        raise LexError("unterminated block comment", start_line, start_column)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.position >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._identifier(line, column)
        if ch.isdigit():
            return self._number(line, column)
        two = self.source[self.position : self.position + 2]
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, line, column)
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.position
        while self.position < len(self.source) and (
            self._peek().isalnum() or self._peek() in "_'"
        ):
            self._advance()
        text = self.source[start : self.position]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.position
        while self.position < len(self.source) and self._peek().isdigit():
            self._advance()
        return Token(TokenKind.NUMBER, self.source[start : self.position], line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenise *source* (convenience wrapper)."""
    return Lexer(source).tokens()
