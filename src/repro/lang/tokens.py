"""Token definitions for the RP language front-end."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "identifier"
    NUMBER = "number"
    # keywords
    PROGRAM = "program"
    PROCEDURE = "procedure"
    PCALL = "pcall"
    WAIT = "wait"
    END = "end"
    GOTO = "goto"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    GLOBAL = "global"
    LOCAL = "local"
    AND = "and"
    OR = "or"
    NOT = "not"
    TRUE = "true"
    FALSE = "false"
    # punctuation / operators
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EOF = "<eof>"


#: Reserved words, mapped to their token kinds.
KEYWORDS = {
    "program": TokenKind.PROGRAM,
    "procedure": TokenKind.PROCEDURE,
    "pcall": TokenKind.PCALL,
    "wait": TokenKind.WAIT,
    "end": TokenKind.END,
    "goto": TokenKind.GOTO,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "do": TokenKind.DO,
    "global": TokenKind.GLOBAL,
    "local": TokenKind.LOCAL,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
