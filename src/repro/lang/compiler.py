"""Compilation of RP programs to RP schemes.

The compiler turns each procedure body into a region of the control graph
(Fig. 1 → Fig. 2): actions and assignments become ACTION nodes, tests
become TEST nodes, ``pcall`` becomes a PCALL node invoking the callee's
entry, ``wait``/``end`` map to their node kinds, ``while`` desugars into a
test with a back edge, and ``goto``/labels wire arbitrary jumps.  Control
falling off the end of a procedure body gets an implicit END node.

Besides the scheme, the compiler returns the *interpretation tables* for
the concrete fragment: each assignment/test node label is mapped to its
expression semantics, which :mod:`repro.interp` turns into the
``M_I_G`` interpretation of Section 4.

Node ids are ``q0, q1, ...`` in statement order (main first), matching the
paper's numbering convention for Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.scheme import Node, NodeKind, RPScheme
from ..errors import SemanticError
from .ast import (
    AbstractAction,
    Assign,
    End,
    Goto,
    If,
    PCall,
    Procedure,
    Program,
    Stmt,
    VarDecl,
    Wait,
    While,
)
from .expr import Expr
from .parser import parse_program

#: A reference to a control point: a concrete node id, a label to resolve,
#: or a procedure entry to resolve.
Ref = Tuple[str, str]  # ("node"|"label"|"proc", name)


def _render_label(expr: Expr) -> str:
    """Expression text for an action/test label, outer parens stripped."""
    text = expr.render()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        for index, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and index != len(text) - 1:
                    return text  # the outer parens do not wrap everything
        text = text[1:-1]
    return text


@dataclass(frozen=True)
class ActionDef:
    """Semantics of a compiled ACTION node label."""

    kind: str  # "abstract" | "assign"
    target: Optional[str] = None
    scope: Optional[str] = None  # "global" | "local"
    value: Optional[Expr] = None


@dataclass(frozen=True)
class TestDef:
    """Semantics of a compiled TEST node label."""

    kind: str  # "abstract" | "expr"
    value: Optional[Expr] = None


@dataclass(frozen=True)
class CompiledProgram:
    """The result of compilation: scheme + interpretation tables."""

    program: Program
    scheme: RPScheme
    actions: Dict[str, ActionDef]
    tests: Dict[str, TestDef]
    node_lines: Dict[str, int]

    @property
    def is_fully_concrete(self) -> bool:
        """``True`` iff every test is an expression (required to build a
        deterministic interpretation; abstract *actions* are tolerated as
        no-ops)."""
        return all(d.kind == "expr" for d in self.tests.values())


class _NodeSpec:
    """A mutable node under construction (successors hold refs)."""

    __slots__ = ("node_id", "kind", "label", "successors", "invoked", "line")

    def __init__(self, node_id: str, kind: NodeKind, label: Optional[str], line: int) -> None:
        self.node_id = node_id
        self.kind = kind
        self.label = label
        self.successors: List[Optional[Ref]] = []
        self.invoked: Optional[Ref] = None
        self.line = line


class Compiler:
    """Single-use compiler for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.specs: Dict[str, _NodeSpec] = {}
        self.actions: Dict[str, ActionDef] = {}
        self.tests: Dict[str, TestDef] = {}
        self.labels: Dict[Tuple[str, str], Ref] = {}
        self.proc_entries: Dict[str, Ref] = {}
        self._counter = 0
        self._current_proc: Optional[Procedure] = None
        self._global_names = {decl.name for decl in program.globals}

    # ------------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        """Compile the program, returning scheme + interpretation tables."""
        self._check_declarations()
        for procedure in self.program.all_procedures():
            self._compile_procedure(procedure)
        nodes = self._resolve()
        root = self._resolve_ref(self.proc_entries[self.program.main.name], set())
        scheme = RPScheme(
            nodes,
            root=root,
            name=self.program.main.name,
            procedures={
                name: self._resolve_ref(ref, set())
                for name, ref in self.proc_entries.items()
            },
        )
        return CompiledProgram(
            program=self.program,
            scheme=scheme,
            actions=self.actions,
            tests=self.tests,
            node_lines={spec.node_id: spec.line for spec in self.specs.values()},
        )

    # ------------------------------------------------------------------
    # Declaration checks
    # ------------------------------------------------------------------

    def _check_declarations(self) -> None:
        seen_procs = set()
        for procedure in self.program.all_procedures():
            if procedure.name in seen_procs:
                raise SemanticError(f"duplicate procedure name {procedure.name!r}")
            seen_procs.add(procedure.name)
        seen_globals = set()
        for decl in self.program.globals:
            if decl.name in seen_globals:
                raise SemanticError(f"duplicate global variable {decl.name!r}")
            seen_globals.add(decl.name)
        for procedure in self.program.all_procedures():
            seen_locals = set()
            for decl in procedure.locals:
                if decl.name in seen_locals:
                    raise SemanticError(
                        f"duplicate local variable {decl.name!r} in {procedure.name!r}"
                    )
                seen_locals.add(decl.name)

    # ------------------------------------------------------------------
    # Procedure compilation
    # ------------------------------------------------------------------

    def _compile_procedure(self, procedure: Procedure) -> None:
        self._current_proc = procedure
        entry, dangling = self._compile_stmts(procedure.body)
        if dangling or entry is None:
            # control can fall off the end: add an implicit end node
            implicit = self._new_spec(NodeKind.END, None, procedure.line)
            self._patch(dangling, ("node", implicit.node_id))
            if entry is None:
                entry = ("node", implicit.node_id)
        self.proc_entries[procedure.name] = entry
        self._current_proc = None

    def _compile_stmts(
        self, stmts: Sequence[Stmt]
    ) -> Tuple[Optional[Ref], List[Tuple[str, int]]]:
        """Compile a statement sequence.

        Returns ``(entry, dangling)``: the entry reference (``None`` for an
        empty sequence — control passes straight through) and the list of
        ``(node_id, successor_index)`` slots to patch with the
        continuation.
        """
        entry: Optional[Ref] = None
        dangling: List[Tuple[str, int]] = []
        for stmt in stmts:
            stmt_entry, stmt_dangling = self._compile_stmt(stmt)
            for label in stmt.labels:
                key = (self._current_proc.name, label)
                if key in self.labels:
                    raise SemanticError(
                        f"duplicate label {label!r} in procedure "
                        f"{self._current_proc.name!r}"
                    )
                self.labels[key] = stmt_entry
            if entry is None:
                entry = stmt_entry
            else:
                self._patch(dangling, stmt_entry)
            dangling = stmt_dangling
        return entry, dangling

    def _compile_stmt(self, stmt: Stmt) -> Tuple[Ref, List[Tuple[str, int]]]:
        if isinstance(stmt, AbstractAction):
            self.actions.setdefault(stmt.name, ActionDef(kind="abstract"))
            spec = self._new_spec(NodeKind.ACTION, stmt.name, stmt.line)
            spec.successors = [None]
            return ("node", spec.node_id), [(spec.node_id, 0)]
        if isinstance(stmt, Assign):
            label = f"{stmt.target}:={_render_label(stmt.value)}"
            definition = ActionDef(
                kind="assign",
                target=stmt.target,
                scope=self._scope_of(stmt.target, stmt.line),
                value=stmt.value,
            )
            existing = self.actions.get(label)
            if existing is not None and existing != definition:
                raise SemanticError(
                    f"action label {label!r} maps to two different semantics "
                    f"(line {stmt.line})"
                )
            self.actions[label] = definition
            self._check_variables(stmt.value, stmt.line)
            spec = self._new_spec(NodeKind.ACTION, label, stmt.line)
            spec.successors = [None]
            return ("node", spec.node_id), [(spec.node_id, 0)]
        if isinstance(stmt, PCall):
            if self.program.procedure(stmt.procedure) is None:
                raise SemanticError(
                    f"pcall of unknown procedure {stmt.procedure!r} (line {stmt.line})"
                )
            spec = self._new_spec(NodeKind.PCALL, None, stmt.line)
            spec.successors = [None]
            spec.invoked = ("proc", stmt.procedure)
            return ("node", spec.node_id), [(spec.node_id, 0)]
        if isinstance(stmt, Wait):
            spec = self._new_spec(NodeKind.WAIT, None, stmt.line)
            spec.successors = [None]
            return ("node", spec.node_id), [(spec.node_id, 0)]
        if isinstance(stmt, End):
            spec = self._new_spec(NodeKind.END, None, stmt.line)
            return ("node", spec.node_id), []
        if isinstance(stmt, Goto):
            return ("label", f"{self._current_proc.name}::{stmt.label}"), []
        if isinstance(stmt, If):
            label = self._test_label(stmt.test, stmt.line)
            spec = self._new_spec(NodeKind.TEST, label, stmt.line)
            spec.successors = [None, None]
            then_entry, then_dangling = self._compile_stmts(stmt.then_body)
            else_entry, else_dangling = self._compile_stmts(stmt.else_body)
            dangling = list(then_dangling) + list(else_dangling)
            if then_entry is None:
                dangling.append((spec.node_id, 0))
            else:
                spec.successors[0] = then_entry
            if else_entry is None:
                dangling.append((spec.node_id, 1))
            else:
                spec.successors[1] = else_entry
            return ("node", spec.node_id), dangling
        if isinstance(stmt, While):
            label = self._test_label(stmt.test, stmt.line)
            spec = self._new_spec(NodeKind.TEST, label, stmt.line)
            spec.successors = [None, None]
            body_entry, body_dangling = self._compile_stmts(stmt.body)
            loop_ref: Ref = ("node", spec.node_id)
            if body_entry is None:
                spec.successors[0] = loop_ref  # empty body: tight loop
            else:
                spec.successors[0] = body_entry
                self._patch(body_dangling, loop_ref)
            return loop_ref, [(spec.node_id, 1)]
        raise SemanticError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _test_label(self, test: Union[str, Expr], line: int) -> str:
        if isinstance(test, str):
            self.tests.setdefault(test, TestDef(kind="abstract"))
            return test
        self._check_variables(test, line)
        label = _render_label(test)
        definition = TestDef(kind="expr", value=test)
        existing = self.tests.get(label)
        if existing is not None and existing != definition:
            raise SemanticError(
                f"test label {label!r} maps to two different semantics (line {line})"
            )
        self.tests[label] = definition
        return label

    def _scope_of(self, name: str, line: int) -> str:
        local_names = {decl.name for decl in self._current_proc.locals}
        if name in local_names:
            return "local"
        if name in self._global_names:
            return "global"
        raise SemanticError(
            f"assignment to undeclared variable {name!r} (line {line})"
        )

    def _check_variables(self, expr: Expr, line: int) -> None:
        local_names = {decl.name for decl in self._current_proc.locals}
        for name in expr.variables():
            if name not in local_names and name not in self._global_names:
                raise SemanticError(f"undeclared variable {name!r} (line {line})")

    def _new_spec(self, kind: NodeKind, label: Optional[str], line: int) -> _NodeSpec:
        node_id = f"q{self._counter}"
        self._counter += 1
        spec = _NodeSpec(node_id, kind, label, line)
        self.specs[node_id] = spec
        return spec

    def _patch(self, slots: List[Tuple[str, int]], target: Ref) -> None:
        for node_id, index in slots:
            self.specs[node_id].successors[index] = target

    # ------------------------------------------------------------------
    # Reference resolution
    # ------------------------------------------------------------------

    def _resolve(self) -> List[Node]:
        nodes: List[Node] = []
        for spec in self.specs.values():
            successors = [
                self._resolve_ref(ref, set()) for ref in spec.successors
            ]
            invoked = (
                self._resolve_ref(spec.invoked, set())
                if spec.invoked is not None
                else None
            )
            nodes.append(
                Node(
                    spec.node_id,
                    spec.kind,
                    label=spec.label,
                    successors=successors,
                    invoked=invoked,
                )
            )
        return nodes

    def _resolve_ref(self, ref: Optional[Ref], seen: set) -> str:
        if ref is None:
            raise SemanticError("internal error: unpatched successor slot")
        kind, name = ref
        if kind == "node":
            return name
        if ref in seen:
            raise SemanticError(f"goto cycle through label {name!r}")
        seen.add(ref)
        if kind == "label":
            proc, _, label = name.partition("::")
            target = self.labels.get((proc, label))
            if target is None:
                raise SemanticError(
                    f"goto to undefined label {label!r} in procedure {proc!r}"
                )
            return self._resolve_ref(target, seen)
        if kind == "proc":
            return self._resolve_ref(self.proc_entries[name], seen)
        raise SemanticError(f"internal error: unknown reference {ref!r}")


def compile_program(program: Program) -> CompiledProgram:
    """Compile a parsed program to a scheme + interpretation tables."""
    return Compiler(program).compile()


def compile_source(source: str) -> CompiledProgram:
    """Parse and compile RP source text in one step."""
    return compile_program(parse_program(source))
