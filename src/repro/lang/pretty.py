"""Pretty-printer for RP programs (the inverse of the parser).

``render_program(parse_program(text))`` re-parses to an equal AST, which
the test-suite checks as a round-trip property.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from .ast import (
    AbstractAction,
    Assign,
    End,
    Goto,
    If,
    PCall,
    Procedure,
    Program,
    Stmt,
    VarDecl,
    Wait,
    While,
)
from .expr import Expr, Var

_INDENT = "    "


def render_program(program: Program) -> str:
    """Render a whole program as parseable source text."""
    parts: List[str] = []
    for decl in program.globals:
        parts.append(f"global {decl.name} := {decl.initial};")
    if program.globals:
        parts.append("")
    parts.append(_render_procedure(program.main, keyword="program"))
    for procedure in program.procedures:
        parts.append("")
        parts.append(_render_procedure(procedure, keyword="procedure"))
    return "\n".join(parts) + "\n"


def _render_procedure(procedure: Procedure, keyword: str) -> str:
    lines = [f"{keyword} {procedure.name} {{"]
    for decl in procedure.locals:
        lines.append(f"{_INDENT}local {decl.name} := {decl.initial};")
    lines.extend(_render_stmts(procedure.body, depth=1))
    lines.append("}")
    return "\n".join(lines)


def _render_stmts(stmts: Sequence[Stmt], depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in stmts:
        lines.extend(_render_stmt(stmt, depth))
    return lines


def _render_stmt(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    prefix = "".join(f"{label}: " for label in stmt.labels)
    if isinstance(stmt, AbstractAction):
        return [f"{pad}{prefix}{stmt.name};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{prefix}{stmt.target} := {stmt.value.render()};"]
    if isinstance(stmt, PCall):
        return [f"{pad}{prefix}pcall {stmt.procedure};"]
    if isinstance(stmt, Wait):
        return [f"{pad}{prefix}wait;"]
    if isinstance(stmt, End):
        return [f"{pad}{prefix}end;"]
    if isinstance(stmt, Goto):
        return [f"{pad}{prefix}goto {stmt.label};"]
    if isinstance(stmt, If):
        lines = [f"{pad}{prefix}if {_render_test(stmt.test)} then {{"]
        lines.extend(_render_stmts(stmt.then_body, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_render_stmts(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}{prefix}while {_render_test(stmt.test)} do {{"]
        lines.extend(_render_stmts(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {stmt!r}")


def _render_test(test: Union[str, Expr]) -> str:
    if isinstance(test, str):
        return test
    if isinstance(test, Var):
        # a bare identifier before then/do reads back as an abstract test
        # name; parenthesising keeps a lone variable an expression
        return f"({test.render()})"
    return test.render()
