"""Expressions of the concrete RP language.

Interpreted RP programs manipulate integer variables in two scopes — the
shared *global* memory and each invocation's *local* memory (Section 4.1).
This module defines the expression AST, its evaluator over a pair of
variable stores, and a canonical textual rendering used as the action
label of compiled assignment/test nodes (so the abstract scheme stays
human-readable: ``x:=y+1``, ``n>0``, ...).

Expressions are deterministic and total except for division by zero, which
raises :class:`~repro.errors.ExecutionError` — the paper's basic
assumption is that actions "always terminate properly", and the
interpretation layer surfaces violations loudly rather than mis-modelling
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple, Union

from ..errors import ExecutionError

#: Variable environments: read-only mappings from names to integers.
Env = Mapping[str, int]


class Expr:
    """Base class of expression nodes (all frozen dataclasses)."""

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def variables(self) -> frozenset:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        return self.value

    def render(self) -> str:
        return str(self.value)

    def variables(self) -> frozenset:
        return frozenset()


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference; locals shadow globals."""

    name: str

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        if self.name in locals_env:
            return locals_env[self.name]
        if self.name in globals_env:
            return globals_env[self.name]
        raise ExecutionError(f"undefined variable {self.name!r}")

    def render(self) -> str:
        return self.name

    def variables(self) -> frozenset:
        return frozenset({self.name})


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": None,  # handled specially (zero check, integer division)
    "%": None,
}

_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic: ``+ - * / %`` (integer semantics, truncation toward
    negative infinity as in Python)."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        a = self.left.evaluate(globals_env, locals_env)
        b = self.right.evaluate(globals_env, locals_env)
        if self.op in ("/", "%"):
            if b == 0:
                raise ExecutionError(f"division by zero in {self.render()}")
            return a // b if self.op == "/" else a % b
        try:
            return _ARITH[self.op](a, b)
        except KeyError:
            raise ExecutionError(f"unknown operator {self.op!r}") from None

    def render(self) -> str:
        return f"({self.left.render()}{self.op}{self.right.render()})"

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        return -self.operand.evaluate(globals_env, locals_env)

    def render(self) -> str:
        return f"(-{self.operand.render()})"

    def variables(self) -> frozenset:
        return self.operand.variables()


@dataclass(frozen=True)
class Compare(Expr):
    """A comparison — evaluates to 1 (true) or 0 (false)."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        a = self.left.evaluate(globals_env, locals_env)
        b = self.right.evaluate(globals_env, locals_env)
        try:
            return 1 if _COMPARE[self.op](a, b) else 0
        except KeyError:
            raise ExecutionError(f"unknown comparison {self.op!r}") from None

    def render(self) -> str:
        # comparisons are non-associative in the grammar, so a nested or
        # negated comparison must re-enter through the parenthesised
        # primary — always emit the parens
        return f"({self.left.render()}{self.op}{self.right.render()})"

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class BoolOp(Expr):
    """Short-circuit ``and`` / ``or`` over truthiness of integers."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        a = self.left.evaluate(globals_env, locals_env)
        if self.op == "and":
            if not a:
                return 0
            return 1 if self.right.evaluate(globals_env, locals_env) else 0
        if self.op == "or":
            if a:
                return 1
            return 1 if self.right.evaluate(globals_env, locals_env) else 0
        raise ExecutionError(f"unknown boolean operator {self.op!r}")

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation over truthiness."""

    operand: Expr

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        return 0 if self.operand.evaluate(globals_env, locals_env) else 1

    def render(self) -> str:
        return f"(not {self.operand.render()})"

    def variables(self) -> frozenset:
        return self.operand.variables()


@dataclass(frozen=True)
class Bool(Expr):
    """``true`` / ``false`` literals (1 / 0)."""

    value: bool

    def evaluate(self, globals_env: Env, locals_env: Env) -> int:
        return 1 if self.value else 0

    def render(self) -> str:
        return "true" if self.value else "false"

    def variables(self) -> frozenset:
        return frozenset()
