"""The RP language front-end: lexer, parser, AST, compiler, printer."""

from .ast import (
    AbstractAction,
    Assign,
    End,
    Goto,
    If,
    PCall,
    Procedure,
    Program,
    Stmt,
    VarDecl,
    Wait,
    While,
)
from .compiler import (
    ActionDef,
    CompiledProgram,
    TestDef,
    compile_program,
    compile_source,
)
from .expr import BinOp, Bool, BoolOp, Compare, Expr, Neg, Not, Num, Var
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .pretty import render_program
from .tokens import Token, TokenKind
from .lint import LintWarning, lint, lint_program, lint_scheme
from .optimize import OptimizationReport, eliminate_dead_nodes, merge_congruent_nodes, optimize

__all__ = [
    "LintWarning",
    "lint",
    "lint_program",
    "lint_scheme",
    "OptimizationReport",
    "eliminate_dead_nodes",
    "merge_congruent_nodes",
    "optimize",

    "AbstractAction",
    "Assign",
    "End",
    "Goto",
    "If",
    "PCall",
    "Procedure",
    "Program",
    "Stmt",
    "VarDecl",
    "Wait",
    "While",
    "ActionDef",
    "CompiledProgram",
    "TestDef",
    "compile_program",
    "compile_source",
    "BinOp",
    "Bool",
    "BoolOp",
    "Compare",
    "Expr",
    "Neg",
    "Not",
    "Num",
    "Var",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "render_program",
    "Token",
    "TokenKind",
]
