"""Abstract syntax of the RP language.

An RP program is a ``main`` program block plus a set of procedures
(Fig. 1).  Statements are:

* abstract actions (``a1;``) — uninterpreted names from the alphabet ``A``;
* assignments (``x := e;``) — the concrete basic actions of Section 4;
* ``pcall p;`` — spawn a child invocation of procedure ``p``;
* ``wait;`` — join all children spawned so far;
* ``end;`` — terminate this invocation;
* ``goto l;`` and labels (``l1: stmt``);
* ``if t then { ... } else { ... }`` — abstract or concrete tests;
* ``while t do { ... }`` — structured sugar over test + back edge.

All nodes are frozen dataclasses carrying their source line for error
reporting; ``labels`` on a statement lists the labels attached to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .expr import Expr


@dataclass(frozen=True)
class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class AbstractAction(Stmt):
    """An uninterpreted action ``name;`` (abstract programs)."""

    name: str
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Assign(Stmt):
    """A concrete basic action ``target := value;``."""

    target: str
    value: Expr
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class PCall(Stmt):
    """``pcall procedure;`` — spawn a parallel child invocation."""

    procedure: str
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Wait(Stmt):
    """``wait;`` — block until all children invocations terminated."""

    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class End(Stmt):
    """``end;`` — terminate this invocation."""

    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Goto(Stmt):
    """``goto label;``."""

    label: str
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class If(Stmt):
    """``if test then { ... } else { ... }``.

    ``test`` is either a bare action name (abstract test) or an
    expression (concrete test).  The else block may be empty.
    """

    test: Union[str, Expr]
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class While(Stmt):
    """``while test do { ... }`` — sugar for a test with a back edge."""

    test: Union[str, Expr]
    body: Tuple[Stmt, ...]
    labels: Tuple[str, ...] = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class VarDecl:
    """A variable declaration ``global x = 3;`` / ``local y = 0;``."""

    name: str
    initial: int
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Procedure:
    """A procedure (or the main program when ``is_main``)."""

    name: str
    body: Tuple[Stmt, ...]
    locals: Tuple[VarDecl, ...] = ()
    is_main: bool = False
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Program:
    """A whole RP program: globals, main, procedures."""

    main: Procedure
    procedures: Tuple[Procedure, ...] = ()
    globals: Tuple[VarDecl, ...] = ()

    def all_procedures(self) -> Tuple[Procedure, ...]:
        """Main first, then the declared procedures."""
        return (self.main,) + self.procedures

    def procedure(self, name: str) -> Optional[Procedure]:
        """Look up a procedure by name (main included)."""
        for proc in self.all_procedures():
            if proc.name == name:
                return proc
        return None

    @property
    def is_abstract(self) -> bool:
        """``True`` iff the program uses no concrete actions or tests.

        Abstract programs compile to schemes analysable without any
        interpretation; concrete programs additionally yield an
        interpretation for the ``M_I_G`` semantics.
        """
        return not self.globals and all(
            not proc.locals and _stmts_abstract(proc.body)
            for proc in self.all_procedures()
        )


def _stmts_abstract(stmts: Tuple[Stmt, ...]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            return False
        if isinstance(stmt, If):
            if not isinstance(stmt.test, str):
                return False
            if not _stmts_abstract(stmt.then_body) or not _stmts_abstract(stmt.else_body):
                return False
        if isinstance(stmt, While):
            if not isinstance(stmt.test, str):
                return False
            if not _stmts_abstract(stmt.body):
                return False
    return True
