"""Static lints for RP programs and schemes.

The front-end half of the paper's tooling vision: cheap syntactic and
graph-level diagnostics a compiler would surface before (or instead of)
the expensive semantic analyses.  Lints never change compilation; they
return :class:`LintWarning` records with codes, one per finding:

=========  ============================================================
code       meaning
=========  ============================================================
W001       procedure is never pcalled (dead procedure)
W002       ``wait`` with no possible preceding ``pcall`` (no-op join)
W003       statement unreachable (after ``goto``/``end`` in a block)
W004       test with identical then/else targets (decision is moot)
W005       node not graph-reachable from the root
W006       ``pcall`` whose children can never be joined (no wait on any
           path to the procedure's end) — fire-and-forget, often a bug
W007       empty loop body (``while t do { }`` spins on the test)
=========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..core.scheme import NodeKind, RPScheme
from .ast import End, Goto, If, PCall, Procedure, Program, Stmt, Wait, While


@dataclass(frozen=True)
class LintWarning:
    """One finding: a code, a location hint and a message."""

    code: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.code} [{self.where}] {self.message}"


def lint_program(program: Program) -> List[LintWarning]:
    """AST-level lints (W001, W003, W007)."""
    warnings: List[LintWarning] = []
    called: Set[str] = set()
    for procedure in program.all_procedures():
        _collect_pcalls(procedure.body, called)
    for procedure in program.procedures:
        if procedure.name not in called:
            warnings.append(
                LintWarning(
                    "W001",
                    procedure.name,
                    f"procedure {procedure.name!r} is never pcalled",
                )
            )
    for procedure in program.all_procedures():
        warnings.extend(_lint_stmts(procedure.body, procedure.name))
    return warnings


def _collect_pcalls(stmts: Sequence[Stmt], called: Set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, PCall):
            called.add(stmt.procedure)
        elif isinstance(stmt, If):
            _collect_pcalls(stmt.then_body, called)
            _collect_pcalls(stmt.else_body, called)
        elif isinstance(stmt, While):
            _collect_pcalls(stmt.body, called)


def _lint_stmts(stmts: Sequence[Stmt], where: str) -> List[LintWarning]:
    warnings: List[LintWarning] = []
    terminated_at: Optional[int] = None
    for index, stmt in enumerate(stmts):
        if terminated_at is not None and not stmt.labels:
            warnings.append(
                LintWarning(
                    "W003",
                    f"{where}:line {getattr(stmt, 'line', 0)}",
                    "statement is unreachable (follows goto/end without a label)",
                )
            )
            break  # one finding per block is enough
        if isinstance(stmt, (Goto, End)):
            terminated_at = index
        if isinstance(stmt, If):
            warnings.extend(_lint_stmts(stmt.then_body, where))
            warnings.extend(_lint_stmts(stmt.else_body, where))
        if isinstance(stmt, While):
            if not stmt.body:
                warnings.append(
                    LintWarning(
                        "W007",
                        f"{where}:line {stmt.line}",
                        "empty loop body: the loop spins on its test",
                    )
                )
            warnings.extend(_lint_stmts(stmt.body, where))
    return warnings


def lint_scheme(scheme: RPScheme) -> List[LintWarning]:
    """Graph-level lints (W002, W004, W005, W006)."""
    warnings: List[LintWarning] = []
    reachable = scheme.graph_reachable_nodes()
    for node_id in sorted(scheme.unreachable_in_graph()):
        warnings.append(
            LintWarning("W005", node_id, "node is not graph-reachable from the root")
        )
    for node in scheme:
        if node.kind is NodeKind.TEST and node.successors[0] == node.successors[1]:
            warnings.append(
                LintWarning(
                    "W004",
                    node.id,
                    f"test {node.label!r} has identical branches",
                )
            )
    warnings.extend(_lint_noop_waits(scheme))
    warnings.extend(_lint_unjoined_pcalls(scheme))
    return warnings


def _region_of(scheme: RPScheme, entry: str) -> Set[str]:
    """Nodes reachable from *entry* following successors only (one
    invocation's control region)."""
    region = {entry}
    frontier = [entry]
    while frontier:
        node = scheme.node(frontier.pop())
        for succ in node.successors:
            if succ not in region:
                region.add(succ)
                frontier.append(succ)
    return region


def _entries(scheme: RPScheme) -> Set[str]:
    entries = {scheme.root}
    for node in scheme:
        if node.invoked is not None:
            entries.add(node.invoked)
    return entries


def _lint_noop_waits(scheme: RPScheme) -> List[LintWarning]:
    """W002: a wait no pcall can precede within its invocation region.

    Conservative backward check within the control region: a wait is a
    no-op when no PCALL node can reach it via successor edges.
    """
    warnings: List[LintWarning] = []
    # forward sets from each pcall
    pcall_forward: Set[str] = set()
    for node in scheme:
        if node.kind is NodeKind.PCALL:
            pcall_forward |= _region_of(scheme, node.successors[0])
    for node in scheme:
        if node.kind is NodeKind.WAIT and node.id not in pcall_forward:
            warnings.append(
                LintWarning(
                    "W002",
                    node.id,
                    "wait cannot be preceded by any pcall: the join is a no-op",
                )
            )
    return warnings


def _lint_unjoined_pcalls(scheme: RPScheme) -> List[LintWarning]:
    """W006: a pcall from which no WAIT node is forward-reachable."""
    warnings: List[LintWarning] = []
    for node in scheme:
        if node.kind is not NodeKind.PCALL:
            continue
        region = _region_of(scheme, node.successors[0])
        if not any(scheme.node(n).kind is NodeKind.WAIT for n in region):
            warnings.append(
                LintWarning(
                    "W006",
                    node.id,
                    "children spawned here are never joined (no wait on any "
                    "path after the pcall)",
                )
            )
    return warnings


def lint(program: Program, scheme: Optional[RPScheme] = None) -> List[LintWarning]:
    """All lints; compiles the program when *scheme* is not supplied."""
    warnings = lint_program(program)
    if scheme is None:
        from .compiler import compile_program

        scheme = compile_program(program).scheme
    warnings.extend(lint_scheme(scheme))
    return warnings
