"""Recursive-descent parser for the RP language.

Grammar (see :mod:`repro.lang.ast` for the constructs)::

    program      ::=  (global_decl | main_decl | proc_decl)*
    global_decl  ::=  "global" IDENT [":=" signed] ";"
    main_decl    ::=  "program" IDENT block
    proc_decl    ::=  "procedure" IDENT block
    block        ::=  "{" local_decl* stmt* "}"
    local_decl   ::=  "local" IDENT [":=" signed] ";"
    stmt         ::=  (IDENT ":")* unlabeled
    unlabeled    ::=  "pcall" IDENT ";" | "wait" ";" | "end" ";"
                   |  "goto" IDENT ";"
                   |  "if" test "then" block ["else" block]
                   |  "while" test "do" block
                   |  IDENT ";"            -- abstract action
                   |  IDENT ":=" expr ";"  -- assignment

    test         ::=  IDENT   -- abstract, when directly followed by
                              -- "then"/"do"
                   |  expr    -- concrete otherwise

    expr         ::=  or ; or ::= and ("or" and)* ; and ::= not ("and" not)*
    not          ::=  "not" not | comparison
    comparison   ::=  additive [relop additive]
    additive     ::=  multiplicative (("+" | "-") multiplicative)*
    multiplicative ::= unary (("*" | "/" | "%") unary)*
    unary        ::=  "-" unary | primary
    primary      ::=  NUMBER | IDENT | "true" | "false" | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from .ast import (
    AbstractAction,
    Assign,
    End,
    Goto,
    If,
    PCall,
    Procedure,
    Program,
    Stmt,
    VarDecl,
    Wait,
    While,
)
from .expr import BinOp, Bool, BoolOp, Compare, Expr, Neg, Not, Num, Var
from .lexer import tokenize
from .tokens import Token, TokenKind

_RELOPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class Parser:
    """Token-stream parser producing a :class:`~repro.lang.ast.Program`."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.text or token.kind.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a whole program (exactly one ``program`` block required)."""
        main: Optional[Procedure] = None
        procedures: List[Procedure] = []
        globals_: List[VarDecl] = []
        while not self._check(TokenKind.EOF):
            token = self._peek()
            if token.kind is TokenKind.GLOBAL:
                globals_.append(self._global_decl())
            elif token.kind is TokenKind.PROGRAM:
                if main is not None:
                    raise ParseError("duplicate 'program' block", token.line, token.column)
                main = self._procedure_decl(is_main=True)
            elif token.kind is TokenKind.PROCEDURE:
                procedures.append(self._procedure_decl(is_main=False))
            else:
                raise ParseError(
                    f"expected 'program', 'procedure' or 'global', found "
                    f"{token.text or token.kind.value!r}",
                    token.line,
                    token.column,
                )
        if main is None:
            token = self._peek()
            raise ParseError("missing 'program' block", token.line, token.column)
        return Program(main=main, procedures=tuple(procedures), globals=tuple(globals_))

    def _global_decl(self) -> VarDecl:
        keyword = self._expect(TokenKind.GLOBAL, "at declaration")
        name = self._expect(TokenKind.IDENT, "after 'global'").text
        initial = 0
        if self._match(TokenKind.ASSIGN):
            initial = self._signed_number()
        self._expect(TokenKind.SEMI, "after global declaration")
        return VarDecl(name=name, initial=initial, line=keyword.line)

    def _procedure_decl(self, is_main: bool) -> Procedure:
        keyword = self._advance()  # 'program' or 'procedure'
        name = self._expect(TokenKind.IDENT, f"after '{keyword.text}'").text
        locals_, body = self._block()
        return Procedure(
            name=name,
            body=tuple(body),
            locals=tuple(locals_),
            is_main=is_main,
            line=keyword.line,
        )

    def _block(self) -> Tuple[List[VarDecl], List[Stmt]]:
        self._expect(TokenKind.LBRACE, "to open a block")
        locals_: List[VarDecl] = []
        while self._check(TokenKind.LOCAL):
            keyword = self._advance()
            name = self._expect(TokenKind.IDENT, "after 'local'").text
            initial = 0
            if self._match(TokenKind.ASSIGN):
                initial = self._signed_number()
            self._expect(TokenKind.SEMI, "after local declaration")
            locals_.append(VarDecl(name=name, initial=initial, line=keyword.line))
        stmts: List[Stmt] = []
        while not self._check(TokenKind.RBRACE):
            stmts.append(self._statement())
        self._expect(TokenKind.RBRACE, "to close a block")
        return locals_, stmts

    def _signed_number(self) -> int:
        sign = -1 if self._match(TokenKind.MINUS) else 1
        token = self._expect(TokenKind.NUMBER, "in initialiser")
        return sign * int(token.text)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _statement(self) -> Stmt:
        labels: List[str] = []
        while (
            self._check(TokenKind.IDENT)
            and self._peek(1).kind is TokenKind.COLON
        ):
            labels.append(self._advance().text)
            self._advance()  # ':'
        stmt = self._unlabeled_statement(tuple(labels))
        return stmt

    def _unlabeled_statement(self, labels: Tuple[str, ...]) -> Stmt:
        token = self._peek()
        if token.kind is TokenKind.PCALL:
            self._advance()
            procedure = self._expect(TokenKind.IDENT, "after 'pcall'").text
            self._expect(TokenKind.SEMI, "after pcall")
            return PCall(procedure=procedure, labels=labels, line=token.line)
        if token.kind is TokenKind.WAIT:
            self._advance()
            self._expect(TokenKind.SEMI, "after wait")
            return Wait(labels=labels, line=token.line)
        if token.kind is TokenKind.END:
            self._advance()
            self._expect(TokenKind.SEMI, "after end")
            return End(labels=labels, line=token.line)
        if token.kind is TokenKind.GOTO:
            self._advance()
            label = self._expect(TokenKind.IDENT, "after 'goto'").text
            self._expect(TokenKind.SEMI, "after goto")
            return Goto(label=label, labels=labels, line=token.line)
        if token.kind is TokenKind.IF:
            self._advance()
            test = self._test(TokenKind.THEN)
            self._expect(TokenKind.THEN, "after the if-test")
            then_locals, then_body = self._block()
            else_body: List[Stmt] = []
            if self._match(TokenKind.ELSE):
                else_locals, else_body = self._block()
                if else_locals:
                    raise ParseError(
                        "local declarations are only allowed at procedure top level",
                        token.line,
                        token.column,
                    )
            if then_locals:
                raise ParseError(
                    "local declarations are only allowed at procedure top level",
                    token.line,
                    token.column,
                )
            return If(
                test=test,
                then_body=tuple(then_body),
                else_body=tuple(else_body),
                labels=labels,
                line=token.line,
            )
        if token.kind is TokenKind.WHILE:
            self._advance()
            test = self._test(TokenKind.DO)
            self._expect(TokenKind.DO, "after the while-test")
            body_locals, body = self._block()
            if body_locals:
                raise ParseError(
                    "local declarations are only allowed at procedure top level",
                    token.line,
                    token.column,
                )
            return While(test=test, body=tuple(body), labels=labels, line=token.line)
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._match(TokenKind.ASSIGN):
                value = self._expression()
                self._expect(TokenKind.SEMI, "after assignment")
                return Assign(target=name, value=value, labels=labels, line=token.line)
            self._expect(TokenKind.SEMI, "after action")
            return AbstractAction(name=name, labels=labels, line=token.line)
        raise ParseError(
            f"expected a statement, found {token.text or token.kind.value!r}",
            token.line,
            token.column,
        )

    def _test(self, terminator: TokenKind) -> Union[str, Expr]:
        # a bare identifier immediately followed by then/do is an abstract
        # test name; anything else is a concrete expression
        if self._check(TokenKind.IDENT) and self._peek(1).kind is terminator:
            return self._advance().text
        return self._expression()

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self._match(TokenKind.OR):
            left = BoolOp(op="or", left=left, right=self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self._match(TokenKind.AND):
            left = BoolOp(op="and", left=left, right=self._not())
        return left

    def _not(self) -> Expr:
        if self._match(TokenKind.NOT):
            return Not(operand=self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        kind = self._peek().kind
        if kind in _RELOPS:
            self._advance()
            return Compare(op=_RELOPS[kind], left=left, right=self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._match(TokenKind.PLUS):
                left = BinOp(op="+", left=left, right=self._multiplicative())
            elif self._match(TokenKind.MINUS):
                left = BinOp(op="-", left=left, right=self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self._match(TokenKind.STAR):
                left = BinOp(op="*", left=left, right=self._unary())
            elif self._match(TokenKind.SLASH):
                left = BinOp(op="/", left=left, right=self._unary())
            elif self._match(TokenKind.PERCENT):
                left = BinOp(op="%", left=left, right=self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._match(TokenKind.MINUS):
            return Neg(operand=self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Num(value=int(token.text))
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Var(name=token.text)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return Bool(value=True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return Bool(value=False)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenKind.RPAREN, "to close parenthesis")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text or token.kind.value!r}",
            token.line,
            token.column,
        )


def parse_program(source: str) -> Program:
    """Parse RP source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (used by tests and the REPL-ish CLI)."""
    parser = Parser(source)
    expr = parser._expression()
    parser._expect(TokenKind.EOF, "after expression")
    return expr
