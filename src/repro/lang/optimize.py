"""Behaviour-preserving scheme optimisations.

Two compiler passes over RP schemes, both proved safe by construction and
cross-checked in the test-suite via strong bisimilarity of explored
fragments:

* :func:`eliminate_dead_nodes` — drop nodes not graph-reachable from the
  root (they contribute nothing to any behaviour from ``σ0``);
* :func:`merge_congruent_nodes` — hash-cons nodes that are *congruent*
  (same kind, label, successor classes and invoked class), iterated to a
  fixpoint.  Congruent nodes are interchangeable in every context, so
  redirecting edges to one representative preserves ``M_G`` up to strong
  bisimilarity.  This is the scheme analogue of DFA minimisation restricted
  to the safe direction (only provably equivalent nodes are merged).

``optimize`` chains both and reports what it did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.scheme import Node, NodeKind, RPScheme


@dataclass(frozen=True)
class OptimizationReport:
    """What an optimisation run changed."""

    scheme: RPScheme
    removed_dead: int
    merged: int

    @property
    def changed(self) -> bool:
        return bool(self.removed_dead or self.merged)


def eliminate_dead_nodes(scheme: RPScheme) -> Tuple[RPScheme, int]:
    """Remove graph-unreachable nodes; returns (scheme, removed count)."""
    live = scheme.graph_reachable_nodes()
    dead = set(scheme.node_ids) - live
    if not dead:
        return scheme, 0
    nodes = [node for node in scheme if node.id in live]
    procedures = {
        name: entry for name, entry in scheme.procedures.items() if entry in live
    }
    return (
        RPScheme(nodes, root=scheme.root, name=scheme.name, procedures=procedures),
        len(dead),
    )


def merge_congruent_nodes(scheme: RPScheme) -> Tuple[RPScheme, int]:
    """Merge behaviourally identical nodes; returns (scheme, merged count).

    Computes the coarsest partition in which two nodes share a class iff
    they agree on kind, label, the classes of their successors (in order)
    and the class of their invoked node — a bisimulation on the control
    graph, hence safe to quotient.
    """
    class_of: Dict[str, int] = {node_id: 0 for node_id in scheme.node_ids}
    while True:
        signatures: Dict[str, Tuple] = {}
        for node in scheme:
            signatures[node.id] = (
                node.kind,
                node.label,
                tuple(class_of[succ] for succ in node.successors),
                class_of[node.invoked] if node.invoked is not None else None,
            )
        renumber: Dict[Tuple, int] = {}
        new_class_of: Dict[str, int] = {}
        for node_id in scheme.node_ids:
            key = (class_of[node_id], signatures[node_id])
            if key not in renumber:
                renumber[key] = len(renumber)
            new_class_of[node_id] = renumber[key]
        if new_class_of == class_of:
            break
        class_of = new_class_of

    classes = set(class_of.values())
    if len(classes) == len(class_of):
        return scheme, 0
    # representative per class: first node id in declaration order
    representative: Dict[int, str] = {}
    for node_id in scheme.node_ids:
        representative.setdefault(class_of[node_id], node_id)

    def image(node_id: str) -> str:
        return representative[class_of[node_id]]

    nodes: List[Node] = []
    for node_id in scheme.node_ids:
        if image(node_id) != node_id:
            continue
        node = scheme.node(node_id)
        nodes.append(
            Node(
                node.id,
                node.kind,
                label=node.label,
                successors=[image(succ) for succ in node.successors],
                invoked=image(node.invoked) if node.invoked is not None else None,
            )
        )
    merged = len(class_of) - len(classes)
    procedures = {name: image(entry) for name, entry in scheme.procedures.items()}
    return (
        RPScheme(nodes, root=image(scheme.root), name=scheme.name, procedures=procedures),
        merged,
    )


def optimize(scheme: RPScheme) -> OptimizationReport:
    """Dead-node elimination followed by congruence merging (to fixpoint)."""
    current, removed = eliminate_dead_nodes(scheme)
    merged_total = 0
    while True:
        current, merged = merge_congruent_nodes(current)
        merged_total += merged
        if not merged:
            break
        current, more_removed = eliminate_dead_nodes(current)
        removed += more_removed
    return OptimizationReport(scheme=current, removed_dead=removed, merged=merged_total)
