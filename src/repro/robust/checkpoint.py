"""Checkpoint/resume for analysis sessions.

A checkpoint freezes everything an :class:`~repro.analysis.AnalysisSession`
needs to continue exploration *across process restarts*:

* the scheme itself (via :mod:`repro.core.serialize`), so a checkpoint
  file is self-contained and restore can verify it matches the scheme
  the caller thinks it is resuming;
* the explored BFS prefix of ``M_G`` — states in discovery order plus
  the recorded transitions of every *expanded* state;
* the frontier (discovered-but-unexpanded states, in queue order), which
  is exactly the session's resume point;
* the session-lifetime antichains memoized by the sup-reachability
  engine (the domination-pruned kept-state cover and the extracted
  minimal basis), when they had been computed.

Because ``AnalysisSession.explore`` is deterministic (states are
expanded whole, in BFS order), a restored session grown to budget ``N``
is state-for-state identical to an uninterrupted session grown to ``N``
— the property the differential tests in ``tests/test_robustness.py``
assert, and the reason a :class:`~repro.robust.PartialVerdict`'s
checkpoint reaches the same final verdict as a fresh run.

The JSON format is versioned (``rpcheck-checkpoint/1``); loading rejects
unknown versions and malformed payloads with
:class:`~repro.errors.CheckpointError` instead of mis-restoring.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.hstate import HState
from ..core.scheme import RPScheme
from ..core.serialize import scheme_from_dict, scheme_to_dict
from ..errors import CheckpointError, RPError

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_session",
    "restore_session",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_FORMAT = "rpcheck-checkpoint/1"


def checkpoint_session(session) -> Dict[str, Any]:
    """A JSON-ready snapshot of *session*'s resumable state.

    Prefer the method form :meth:`repro.analysis.AnalysisSession.checkpoint`.
    """
    graph = session.graph
    index = graph.index
    transitions: List[List[List[Any]]] = []
    for number in range(session.expanded_count):
        out = []
        for t in graph.edges[number]:
            out.append(
                [index[t.target], t.label, t.rule, t.node, list(t.path), t.branch]
            )
        transitions.append(out)
    antichains: Dict[str, Any] = {}
    kept = session.memo.get("kept-states")
    if kept is not None:
        antichains["kept_states"] = [state.to_notation() for state in kept]
    basis = session.memo.get("minimal-basis")
    if basis is not None:
        antichains["minimal_basis"] = [state.to_notation() for state in basis[0]]
        antichains["minimal_basis_kept"] = basis[1]
    return {
        "format": CHECKPOINT_FORMAT,
        "scheme": scheme_to_dict(session.scheme),
        "initial": session.initial.to_notation(),
        "states": [state.to_notation() for state in graph.states],
        "transitions": transitions,
        "expanded": session.expanded_count,
        "complete": graph.complete,
        "antichains": antichains,
        "stats": {
            "explorations": session.stats.explorations,
            "explore_seconds": session.stats.explore_seconds,
        },
    }


def restore_session(
    data: Dict[str, Any],
    *,
    scheme: Optional[RPScheme] = None,
    **session_kwargs: Any,
):
    """Rebuild an :class:`~repro.analysis.AnalysisSession` from a checkpoint.

    With *scheme* given, the checkpoint's embedded scheme must match it
    structurally (same serialised form); otherwise the embedded scheme is
    deserialised and used.  Extra keyword arguments (``tracer=``,
    ``metrics=``, ``budget=``, ...) pass through to the session
    constructor.

    The restored session's graph, frontier and memoized antichains are
    bit-identical (state-for-state, transition-for-transition) to the
    checkpointed session's, so exploration resumes exactly where it
    paused.
    """
    from ..analysis.session import AnalysisSession
    from ..core.semantics import Transition

    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format "
            f"{data.get('format') if isinstance(data, dict) else data!r} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    try:
        embedded = scheme_from_dict(data["scheme"])
        if scheme is not None:
            if scheme_to_dict(scheme) != data["scheme"]:
                raise CheckpointError(
                    f"checkpoint was taken for scheme "
                    f"{data['scheme'].get('name')!r}, which does not match "
                    f"the supplied scheme {scheme.name!r}"
                )
        else:
            scheme = embedded
        initial = HState.parse(data["initial"])
        states = [HState.parse(notation) for notation in data["states"]]
        expanded = int(data["expanded"])
        raw_transitions = data["transitions"]
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, RPError) as error:
        raise CheckpointError(f"malformed checkpoint: {error}") from error
    if not states or states[0] != initial:
        raise CheckpointError("malformed checkpoint: initial state mismatch")
    if not 0 <= expanded <= len(states) or len(raw_transitions) != expanded:
        raise CheckpointError("malformed checkpoint: expansion count mismatch")

    session = AnalysisSession(scheme, initial=initial, **session_kwargs)
    semantics = session.semantics
    canonical = [semantics.intern(state) for state in states]
    graph = session.graph
    # Rebuild discovery order and parents by replaying the recorded
    # expansions; the parent of each state is the transition that first
    # discovered it, exactly as in the original run.
    try:
        for number, state in enumerate(canonical):
            if number == 0:
                continue
            graph._add_state(state, None)
        for number in range(expanded):
            source = canonical[number]
            out = graph.edges[number]
            for target_idx, label, rule, node, path, branch in raw_transitions[number]:
                target = canonical[target_idx]
                transition = Transition(
                    source=source,
                    label=label,
                    target=target,
                    rule=rule,
                    node=node,
                    path=tuple(path),
                    branch=branch,
                )
                out.append(transition)
                if graph.parent.get(target) is None and target is not canonical[0]:
                    graph.parent[target] = transition
    except (IndexError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint: {error}") from error
    session._restore_frontier(expanded, bool(data.get("complete", False)))
    antichains = data.get("antichains") or {}
    try:
        if "kept_states" in antichains:
            session.memo["kept-states"] = [
                semantics.intern(HState.parse(n)) for n in antichains["kept_states"]
            ]
        if "minimal_basis" in antichains:
            session.memo["minimal-basis"] = (
                [
                    semantics.intern(HState.parse(n))
                    for n in antichains["minimal_basis"]
                ],
                int(antichains.get("minimal_basis_kept", 0)),
            )
    except RPError as error:
        raise CheckpointError(f"malformed checkpoint antichain: {error}") from error
    stats = data.get("stats") or {}
    session.stats.explorations = int(stats.get("explorations", 0))
    session.stats.explore_seconds = float(stats.get("explore_seconds", 0.0))
    return session


def save_checkpoint(data: Dict[str, Any], path: str) -> None:
    """Write a checkpoint dict to *path* as JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, separators=(",", ":"))
            handle.write("\n")
    except OSError as error:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {error}") from error


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a checkpoint dict from *path*."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise CheckpointError(f"invalid checkpoint JSON: {error}") from error
