"""Budget installation and exhaustion policy for decision procedures.

Every decision procedure accepts a keyword-only ``budget=`` and runs its
body through :func:`governed`, which

1. installs the budget as the session's ambient budget (so the explore
   loop, the sup-reachability engine, the restricted inevitability
   search, ... all observe it without further plumbing);
2. starts the deadline clock and, on the way out, exports the budget's
   counters into the session's metrics registry;
3. applies the exhaustion policy: with ``on_exhaust="raise"`` (or no
   budget at all) a :class:`~repro.errors.BudgetExhausted` /
   :class:`~repro.errors.AnalysisBudgetExceeded` propagates; with
   ``on_exhaust="partial"`` it is converted into a
   :class:`~repro.robust.PartialVerdict` carrying a progress certificate
   and a resumable checkpoint of the session.

Only the procedure that was *called with* the budget converts — nested
procedure calls (``halts`` → ``boundedness``, ``persistent`` →
``reaches_downward_closed``) pass ``budget=None`` and let exhaustion
propagate, so a composite procedure never mistakes an inner UNKNOWN for
a conclusive sub-answer.

Exhaustion is also a **flight-recorder incident**: when a dump target is
configured (``RPCHECK_FLIGHT_DIR`` or a recorder ``dump_dir``), the
wrapper dumps a ``rpcheck-flight/1`` diagnostic bundle — recent spans,
metrics snapshot, the resumable checkpoint — and a partial verdict
carries the bundle path in ``details["flight_bundle"]``.  The dump is
idempotent per exception (the session's :meth:`phase` hook may already
have recorded it) and a no-op when no target is configured.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from ..errors import AnalysisBudgetExceeded, BudgetExhausted
from ..obs.recorder import record_incident
from .budget import Budget
from .partial import PartialVerdict, ProgressCertificate

__all__ = ["governed", "partial_verdict_from"]

T = TypeVar("T")


def governed(
    session,
    budget: Optional[Budget],
    question: str,
    body: Callable[[], T],
    *,
    allow_partial: bool = True,
) -> T:
    """Run *body* under *budget* on *session* (see module docstring).

    ``allow_partial=False`` disables the partial-verdict conversion even
    under ``on_exhaust="partial"`` — used by helpers whose return type is
    a witness or a list, where callers test ``is None`` and a truthy
    sentinel object would be misread.  Such helpers always raise on
    exhaustion (the budget is still installed and exported).
    """
    if budget is None:
        return body()
    previous = session.budget
    session.budget = budget
    budget.start()
    try:
        return body()
    except BudgetExhausted as error:
        if not allow_partial or budget.on_exhaust != "partial":
            raise
        return partial_verdict_from(  # type: ignore[return-value]
            session, question, error.resource, error
        )
    except AnalysisBudgetExceeded as error:
        # a plain state-budget exhaustion (max_states ran out) under a
        # partial-mode budget also degrades to a typed partial verdict
        if not allow_partial or budget.on_exhaust != "partial":
            raise
        return partial_verdict_from(  # type: ignore[return-value]
            session, question, "states", error
        )
    finally:
        session.budget = previous
        budget.export(session.metrics)


def partial_verdict_from(
    session, question: str, resource: str, error: Exception
) -> PartialVerdict:
    """Build the UNKNOWN-with-progress verdict for an interrupted run."""
    kept = session.memo.get("kept-states")
    progress_attrs = dict(getattr(error, "progress", None) or {})
    budget = session.budget
    progress = ProgressCertificate(
        resource=resource,
        states_explored=len(session.graph),
        frontier_size=len(session.frontier),
        elapsed_seconds=float(
            progress_attrs.pop("elapsed_seconds", None)
            or (budget.elapsed() if budget is not None else 0.0)
        ),
        checks=int(
            progress_attrs.pop("checks", None)
            or (budget.checks if budget is not None else 0)
        ),
        antichain_size=len(kept) if kept is not None else None,
        details={"message": str(error), **progress_attrs},
    )
    try:
        checkpoint = session.checkpoint()
    except Exception:  # pragma: no cover - checkpointing must never mask
        checkpoint = None
    bundle = record_incident(
        session,
        error,
        reason=f"{type(error).__name__} answering {question!r}",
        context={"question": question, "resource": resource},
    )
    details = {"resource": resource, "question": question}
    if bundle is not None:
        details["flight_bundle"] = bundle
    verdict = PartialVerdict(
        holds=False,
        method="partial",
        certificate=progress,
        exact=False,
        details=details,
        question=question,
        resource=resource,
        progress=progress,
        checkpoint=checkpoint,
    )
    session.metrics.counter(
        "analysis.partial_verdicts", "queries answered with a partial verdict"
    ).labels(resource=resource).inc()
    return verdict
