"""Deterministic fault injection for the analysis stack.

The chaos harness answers the question the robustness suite needs
answered: *when the semantics layer misbehaves, does every decision
procedure fail cleanly?*  A :class:`ChaosSemantics` wraps successor
computation and, at plan-selected points, either

* **raises** a :class:`~repro.errors.FaultInjected` (a transient backend
  failure — the procedure must surface it as a typed error, never hang
  or emit a verdict built on half-computed successors);
* **delays** the computation by a configurable sleep (a slow backend —
  combined with a wall-clock :class:`~repro.robust.Budget`, the
  procedure must degrade to a :class:`~repro.robust.PartialVerdict`);
* **corrupts** the result — returns transitions whose ``source`` is not
  the queried state (a metadata-level corruption the exploration
  engines detect via their transition-source validation, raising
  :class:`~repro.errors.CorruptionDetected` instead of silently
  building a wrong graph).

Injection decisions are a pure function of ``(seed, computation
index)``, so a chaos run is bit-reproducible regardless of call
interleaving, and the memoized successor cache never replays a fault
(faults model the *computation*, not the cached value).

Usage::

    plan = FaultPlan(seed=7, raise_rate=0.05)
    session = AnalysisSession(scheme, semantics=ChaosSemantics(scheme, plan))
    boundedness(scheme, session=session)   # clean RPError or honest verdict
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..core.semantics import MemoizingSemantics, Transition
from ..errors import FaultInjected

__all__ = [
    "FaultPlan",
    "ChaosSemantics",
    "FAULT_KINDS",
    "ProcessFaultPlan",
    "install_process_faults",
]

#: The injectable fault kinds, in plan-evaluation order.
FAULT_KINDS = ("raise", "delay", "corrupt")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of fault injections.

    Each successor *computation* (cache misses only) gets an index
    ``0, 1, 2, ...``; :meth:`decide` maps the index to a fault kind or
    ``None`` using a PRNG keyed by ``(seed, index)`` — the decision for
    index *i* never depends on how many other computations ran before
    it.  ``immune`` exempts the first computations so the initial state
    is always expandable (keeps tests meaningful: a run that dies on
    σ0 exercises nothing).  ``fault_at`` pins specific indices to
    specific kinds, overriding the rates — the precision tool for
    "controlled points" tests.
    """

    seed: int = 0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_seconds: float = 0.0
    immune: int = 1
    fault_at: "FrozenSet[tuple] | tuple" = field(default_factory=tuple)

    def decide(self, index: int) -> Optional[str]:
        """The fault kind injected at computation *index* (or ``None``)."""
        for pinned_index, kind in self.fault_at:
            if pinned_index == index:
                if kind not in FAULT_KINDS:
                    raise ValueError(f"unknown fault kind {kind!r}")
                return kind
        if index < self.immune:
            return None
        draw = random.Random(f"{self.seed}:{index}").random()
        for kind, rate in (
            ("raise", self.raise_rate),
            ("delay", self.delay_rate),
            ("corrupt", self.corrupt_rate),
        ):
            if draw < rate:
                return kind
            draw -= rate
        return None


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A seeded, deterministic schedule of worker-process kills.

    The process-level counterpart of :class:`FaultPlan`: where that one
    makes the *semantics* misbehave, this one SIGKILLs exploration
    worker **processes** of a sharded session
    (``AnalysisSession(workers=N)``), exercising the supervision path in
    :mod:`repro.analysis.parallel` — drain, respawn, window replay, and
    (past the respawn budget) degradation to sequential exploration.

    Windows are numbered ``1, 2, ...`` in coordinator round order
    (``WorkerPool.rounds`` after the round-start increment, replayed
    windows included).  :meth:`victims` is a pure function of
    ``(seed, window)``, so a chaos run is bit-reproducible.  ``kill_at``
    pins ``(window, worker)`` pairs — the precision tool; ``kill_rate``
    draws one victim per non-immune window with the given probability.
    ``max_kills`` bounds total kills (enforced by the pool, which stops
    injecting once the budget is spent) and ``immune`` exempts the first
    windows so exploration always gets under way.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kill_at: "FrozenSet[tuple] | tuple" = field(default_factory=tuple)
    max_kills: int = 1
    immune: int = 1

    def victims(self, window: int, workers: int) -> tuple:
        """Worker indices to SIGKILL at *window* (usually empty)."""
        chosen = []
        for pinned_window, worker in self.kill_at:
            if pinned_window == window:
                chosen.append(worker % workers)
        if window > self.immune:
            rng = random.Random(f"{self.seed}:process:{window}")
            if rng.random() < self.kill_rate:
                victim = rng.randrange(workers)
                if victim not in chosen:
                    chosen.append(victim)
        return tuple(chosen)


def install_process_faults(session, plan: ProcessFaultPlan):
    """Arm *session*'s worker pool with *plan*; returns the pool.

    The session must be sharded (``workers > 1``).  Spawns the pool if
    it is not warm yet so the plan survives until exploration starts.
    """
    if session.workers < 2:
        raise ValueError(
            "process faults need a sharded session (workers > 1), "
            f"got workers={session.workers}"
        )
    pool = session._ensure_pool()
    pool.fault_plan = plan
    return pool


class ChaosSemantics(MemoizingSemantics):
    """A :class:`MemoizingSemantics` with plan-driven fault injection.

    Drop-in wherever an :class:`~repro.analysis.AnalysisSession` builds
    its semantics (pass via ``AnalysisSession(scheme,
    semantics=ChaosSemantics(scheme, plan))``); every analysis engine
    then runs against the faulty backend.  Counters record what was
    actually injected so tests can assert the harness exercised each
    mode.
    """

    def __init__(self, scheme, plan: FaultPlan, *, sleep=time.sleep) -> None:
        super().__init__(scheme)
        self.plan = plan
        self._sleep = sleep
        #: Successor computations attempted (== injection indices used).
        self.computations = 0
        #: Injections performed, by kind.
        self.injected = {kind: 0 for kind in FAULT_KINDS}

    def successors(self, state) -> List[Transition]:
        cached = self._successors.get(state)
        if cached is not None:
            self.cache_hits += 1
            return cached
        index = self.computations
        self.computations += 1
        fault = self.plan.decide(index)
        if fault == "raise":
            self.injected["raise"] += 1
            raise FaultInjected(
                f"chaos: injected failure at successor computation #{index} "
                f"(state {state.to_notation()})"
            )
        if fault == "delay":
            self.injected["delay"] += 1
            self._sleep(self.plan.delay_seconds)
        result = super().successors(state)
        if fault == "corrupt":
            self.injected["corrupt"] += 1
            # Metadata corruption: transitions claiming to leave a state
            # they do not leave.  Returned *instead of* the cached list —
            # the cache keeps the truthful value, so a detected
            # corruption does not poison later (or resumed) runs.
            return [self._corrupt(state, t) for t in result]
        return result

    @staticmethod
    def _corrupt(state, transition: Transition) -> Transition:
        from dataclasses import replace

        wrong_source = transition.target if transition.target != state else state
        if wrong_source == transition.source:
            # self-looping metadata; corrupt the rule tag instead so the
            # transition is still detectably inconsistent
            return replace(transition, rule="chaos-corrupted")
        return replace(transition, source=wrong_source)
