"""Typed partial verdicts: UNKNOWN with a progress certificate.

Well-structured transition systems make partial exploration a
first-class citizen: an interrupted coverability or boundedness run
still carries a *sound* partial result — the BFS prefix explored so far,
its frontier, and the surviving antichain all remain valid inputs for a
resumed run.  A :class:`PartialVerdict` packages exactly that: instead
of dying with an exception, a governed procedure under
``on_exhaust="partial"`` answers UNKNOWN *plus* everything needed to (a)
report progress honestly and (b) continue later, possibly in another
process, via the embedded checkpoint.

A ``PartialVerdict`` is an :class:`~repro.analysis.certificates.AnalysisVerdict`
so it flows through every existing consumer (``SchemeReport``, the CLI,
benchmark harnesses); it is falsy and flagged ``exact=False`` so no
boolean use can mistake it for a proof of anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..analysis.certificates import AnalysisVerdict

__all__ = ["PartialVerdict", "ProgressCertificate"]


@dataclass(frozen=True)
class ProgressCertificate:
    """How far an interrupted analysis got, in re-checkable terms.

    ``states_explored``/``frontier_size`` describe the session's shared
    BFS prefix (a sound under-approximation of ``Reach(σ0)``);
    ``antichain_size`` is the surviving domination-pruned antichain when
    the sup-reachability engine had run (``None`` otherwise);
    ``resource`` names the budget axis that ran out.
    """

    resource: str
    states_explored: int
    frontier_size: int
    elapsed_seconds: float
    checks: int
    antichain_size: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PartialVerdict(AnalysisVerdict):
    """UNKNOWN, with progress and (usually) a resumable checkpoint.

    ``holds`` is pinned ``False`` and :meth:`__bool__` returns ``False``
    — a partial verdict never asserts the property either way; consult
    :attr:`verdict` (always ``"UNKNOWN"``) and :attr:`progress`.
    ``checkpoint`` is a JSON-ready dict accepted by
    :meth:`repro.analysis.AnalysisSession.restore`; ``None`` when the
    interrupted engine had no session state worth saving.
    """

    question: str = ""
    resource: str = ""
    progress: Optional[ProgressCertificate] = None
    checkpoint: Optional[Dict[str, Any]] = None

    #: Uniform three-valued answer; conclusive verdicts answer via ``holds``.
    verdict: str = "UNKNOWN"

    @property
    def is_partial(self) -> bool:
        return True

    @property
    def resumable(self) -> bool:
        """``True`` when a checkpoint is attached."""
        return self.checkpoint is not None

    def __bool__(self) -> bool:
        return False

    def describe(self) -> str:
        """One-line human rendering (used by ``rpcheck``)."""
        prefix = f"{self.question}: " if self.question else ""
        progress = self.progress
        if progress is None:
            return f"{prefix}unknown ({self.resource} budget exhausted)"
        return (
            f"{prefix}unknown ({self.resource} budget exhausted after "
            f"{progress.states_explored} states, frontier "
            f"{progress.frontier_size}, {progress.elapsed_seconds:.3f}s"
            f"{', resumable' if self.resumable else ''})"
        )
