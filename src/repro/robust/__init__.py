"""Resource governance and fault tolerance for the analysis stack.

This package makes the analysis engines *governable*: every decision
procedure accepts a keyword-only ``budget=`` — a :class:`Budget`
bundling a wall-clock deadline, a state cap, a memory ceiling and a
cooperative :class:`CancelToken` — and either raises a structured
:class:`~repro.errors.BudgetExhausted` on exhaustion or, under
``on_exhaust="partial"``, degrades to a :class:`PartialVerdict`: UNKNOWN
plus a :class:`ProgressCertificate` and a resumable checkpoint.

Checkpoints (:mod:`repro.robust.checkpoint`) freeze a session's explored
BFS prefix, frontier and memoized antichains into versioned JSON;
:meth:`repro.analysis.AnalysisSession.restore` continues across process
restarts, and ``rpcheck --deadline/--mem-limit/--checkpoint/--resume``
exposes the whole loop on the command line.

The chaos harness (:mod:`repro.robust.chaos`) injects seeded faults —
raises, delays, corrupted successors — underneath the whole stack so the
robustness suite can prove every procedure fails *cleanly*: a typed
:class:`~repro.errors.RPError` or an honest partial verdict, never a
hang, never a silently wrong answer.
"""

from ..errors import (
    BudgetExhausted,
    CheckpointError,
    CorruptionDetected,
    FaultInjected,
)
from .budget import Budget, CancelToken, memory_bytes
from .chaos import (
    FAULT_KINDS,
    ChaosSemantics,
    FaultPlan,
    ProcessFaultPlan,
    install_process_faults,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_session,
    load_checkpoint,
    restore_session,
    save_checkpoint,
)
from .governance import governed, partial_verdict_from
from .partial import PartialVerdict, ProgressCertificate

__all__ = [
    "Budget",
    "CancelToken",
    "memory_bytes",
    "BudgetExhausted",
    "CheckpointError",
    "CorruptionDetected",
    "FaultInjected",
    "PartialVerdict",
    "ProgressCertificate",
    "governed",
    "partial_verdict_from",
    "CHECKPOINT_FORMAT",
    "checkpoint_session",
    "restore_session",
    "save_checkpoint",
    "load_checkpoint",
    "FaultPlan",
    "ChaosSemantics",
    "FAULT_KINDS",
    "ProcessFaultPlan",
    "install_process_faults",
]
