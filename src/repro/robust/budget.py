"""Resource budgets for governed analyses.

A :class:`Budget` bounds an analysis run along four axes:

* **wall-clock deadline** — seconds from the budget's first use;
* **state budget** — a cap on discovered states, folded into the
  exploration budgets of every procedure running under the budget;
* **memory ceiling** — bytes, enforced by periodic sampling (tracemalloc
  when tracing is active, RSS otherwise);
* **cooperative cancellation** — a thread-safe :class:`CancelToken` that
  any other thread (a signal handler, a service timeout, a UI button)
  can flip.

Budgets are *cooperative*: the analysis loops call :meth:`Budget.check`
between units of work (one state expansion, one saturation round), so a
budget can only interrupt at clean points — which is exactly what makes
an interrupted exploration resumable.  ``check`` is engineered to be
cheap enough for per-expansion use: cancellation and deadline tests are
a flag read and one clock call; memory sampling runs every
``check_interval`` calls only.

Exhaustion raises :class:`~repro.errors.BudgetExhausted` with the
exhausted ``resource`` and a progress snapshot.  Under
``on_exhaust="partial"`` the governed procedure wrappers convert the
exception into a :class:`~repro.robust.PartialVerdict` instead (see
:mod:`repro.robust.governance`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from ..errors import BudgetExhausted

__all__ = ["Budget", "CancelToken", "memory_bytes"]


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    ``cancel()`` may be called from any thread (or a signal handler); the
    analysis observes it at its next :meth:`Budget.check`.  Tokens are
    reusable across budgets and carry an optional reason for reporting.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent)."""
        if reason is not None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        """Clear the flag so the token can govern another run."""
        self._event.clear()
        self.reason = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


def memory_bytes() -> int:
    """The process's current memory footprint in bytes (best effort).

    Prefers ``tracemalloc`` (exact traced allocations) when tracing is
    active; otherwise reads RSS from ``/proc/self/statm`` (Linux) and
    falls back to ``resource.getrusage`` peak RSS elsewhere.  Returns 0
    when no source is available — a budget with a memory ceiling then
    simply never trips, it does not crash.
    """
    import tracemalloc

    if tracemalloc.is_tracing():
        current, _peak = tracemalloc.get_traced_memory()
        return current
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        import os

        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        import sys

        return usage if sys.platform == "darwin" else usage * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


class Budget:
    """A resource envelope for one (or several sequential) analyses.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the analysis may run, measured from the first
        :meth:`check` (or an explicit :meth:`start`).  ``None`` = no
        deadline.
    max_states:
        Cap on discovered states.  Folded into every governed
        procedure's exploration budget (the procedure's own
        ``max_states`` still applies; the tighter bound wins).
    max_memory_bytes:
        Ceiling on the process footprint, sampled every
        ``check_interval`` checks via *memory_sampler*.
    cancel:
        A :class:`CancelToken` observed at every check.
    on_exhaust:
        ``"raise"`` (default): exhaustion raises
        :class:`~repro.errors.BudgetExhausted`.  ``"partial"``: governed
        procedures return a :class:`~repro.robust.PartialVerdict`
        carrying a progress certificate and a resumable checkpoint.
    check_interval:
        How many checks between memory samples (memory sampling is the
        only non-trivially-cheap test).
    clock / memory_sampler:
        Injectable time and memory sources — the tests drive budgets
        deterministically through these.
    """

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_states: Optional[int] = None,
        max_memory_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
        on_exhaust: str = "raise",
        check_interval: int = 64,
        clock: Callable[[], float] = time.monotonic,
        memory_sampler: Callable[[], int] = memory_bytes,
    ) -> None:
        if on_exhaust not in ("raise", "partial"):
            raise ValueError(
                f"on_exhaust must be 'raise' or 'partial', got {on_exhaust!r}"
            )
        self.deadline = deadline
        self.max_states = max_states
        self.max_memory_bytes = max_memory_bytes
        self.cancel = cancel
        self.on_exhaust = on_exhaust
        self.check_interval = max(1, check_interval)
        self.clock = clock
        self.memory_sampler = memory_sampler
        #: Number of check() calls so far (≈ units of analysis work).
        self.checks = 0
        #: Memory samples taken and the last sampled value (bytes).
        self.memory_samples = 0
        self.last_memory_bytes = 0
        #: The resource that exhausted this budget, once one has.
        self.exhausted: Optional[str] = None
        self._started_at: Optional[float] = None
        self._exported_checks = 0
        self._exported_exhausted = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent; check() starts it too)."""
        if self._started_at is None:
            self._started_at = self.clock()
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def elapsed(self) -> float:
        """Seconds since the budget started (0.0 before the first check)."""
        if self._started_at is None:
            return 0.0
        return self.clock() - self._started_at

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` without one."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    def effective_max_states(self, requested: int) -> int:
        """The tighter of the caller's state budget and this budget's."""
        if self.max_states is None:
            return requested
        return min(requested, self.max_states)

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------

    def check(self, **progress: Any) -> None:
        """Raise :class:`~repro.errors.BudgetExhausted` if any resource ran out.

        *progress* (e.g. ``states=len(graph), frontier=len(queue)``) is
        embedded in the exception so even a bare ``except`` site can
        report how far the analysis got.  Called between units of work;
        cancellation and deadline are tested every call, memory every
        ``check_interval`` calls.
        """
        self.checks += 1
        if self._started_at is None:
            self._started_at = self.clock()
        if self.cancel is not None and self.cancel.cancelled:
            reason = self.cancel.reason or "cancelled by caller"
            self._exhaust("cancelled", reason, progress)
        if self.deadline is not None:
            elapsed = self.clock() - self._started_at
            if elapsed > self.deadline:
                self._exhaust(
                    "deadline",
                    f"wall-clock deadline of {self.deadline:.3f}s exceeded "
                    f"({elapsed:.3f}s elapsed)",
                    progress,
                )
        if (
            self.max_memory_bytes is not None
            and self.checks % self.check_interval == 0
        ):
            self.memory_samples += 1
            self.last_memory_bytes = self.memory_sampler()
            if self.last_memory_bytes > self.max_memory_bytes:
                self._exhaust(
                    "memory",
                    f"memory ceiling of {self.max_memory_bytes} bytes exceeded "
                    f"(sampled {self.last_memory_bytes} bytes)",
                    progress,
                )

    def _exhaust(self, resource: str, why: str, progress: Dict[str, Any]) -> None:
        self.exhausted = resource
        snapshot = dict(progress)
        snapshot.setdefault("elapsed_seconds", self.elapsed())
        snapshot.setdefault("checks", self.checks)
        raise BudgetExhausted(
            f"budget exhausted ({resource}): {why}",
            resource=resource,
            progress=snapshot,
            explored=int(progress.get("states", 0) or 0),
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def export(self, metrics) -> None:
        """Publish the budget's counters into a metrics registry.

        Feeds the existing ``repro.obs`` pipeline: ``rpcheck --metrics``,
        ``--stats`` and the BENCH artefacts all pick these up.
        """
        delta = self.checks - self._exported_checks
        if delta > 0:
            metrics.counter("budget.checks", "budget checks performed").inc(delta)
            self._exported_checks = self.checks
        metrics.gauge("budget.elapsed_seconds", "governed wall time").set(
            self.elapsed()
        )
        if self.max_memory_bytes is not None:
            metrics.gauge(
                "budget.memory_bytes", "last sampled process footprint"
            ).set(self.last_memory_bytes)
        if self.exhausted is not None and not self._exported_exhausted:
            self._exported_exhausted = True
            metrics.counter(
                "budget.exhausted", "budget exhaustion events by resource"
            ).labels(resource=self.exhausted).inc()

    def __repr__(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        if self.max_states is not None:
            parts.append(f"max_states={self.max_states}")
        if self.max_memory_bytes is not None:
            parts.append(f"max_memory={self.max_memory_bytes}B")
        if self.cancel is not None:
            parts.append(repr(self.cancel))
        parts.append(f"on_exhaust={self.on_exhaust!r}")
        return f"Budget({', '.join(parts)})"
