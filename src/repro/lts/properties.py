"""Safety properties and ``⊑_d``-compatibility (Definition 11, Prop. 12).

Definition 11: a property ``φ`` is *compatible with* ``⊑_d`` iff for any
transition systems ``P ⊑_d P'``, ``P' ⊨ φ`` entails ``P ⊨ φ``.
Proposition 12: all safety properties are compatible with ``⊑_d``, and so
is termination.  This is the engine of the paper's methodology: establish
``φ`` on the abstract ``M_G`` and conclude it for every interpreted
``M_I_G``.

Safety properties are represented as finite automata over the *visible*
alphabet whose ``bad`` states are absorbing: a system violates the
property iff one of its weak traces drives the automaton into a bad state
(a *bad prefix*).  Checking is an exact product exploration on finite
LTSs — no trace-length bound involved.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.alphabet import TAU
from .lts import LTS, State


class SafetyProperty:
    """A regular safety property over visible actions.

    ``transitions`` maps ``(dfa_state, label)`` to the next DFA state;
    missing entries are self-loops (unconstrained actions).  States listed
    in ``bad`` are absorbing violation states.
    """

    def __init__(
        self,
        name: str,
        initial: str,
        transitions: Dict[Tuple[str, str], str],
        bad: Iterable[str],
    ) -> None:
        self.name = name
        self.initial = initial
        self.transitions = dict(transitions)
        self.bad = frozenset(bad)

    def step(self, dfa_state: str, label: str) -> str:
        """The DFA move on one visible *label* (τ never moves the DFA)."""
        if label == TAU or dfa_state in self.bad:
            return dfa_state
        return self.transitions.get((dfa_state, label), dfa_state)

    def violates(self, word: Sequence[str]) -> bool:
        """``True`` iff *word* is a bad prefix."""
        state = self.initial
        for label in word:
            state = self.step(state, label)
            if state in self.bad:
                return True
        return state in self.bad

    def __repr__(self) -> str:
        return f"SafetyProperty({self.name!r})"


def never_occurs(label: str) -> SafetyProperty:
    """The safety property "action *label* never happens"."""
    return SafetyProperty(
        name=f"never({label})",
        initial="ok",
        transitions={("ok", label): "bad"},
        bad=["bad"],
    )


def never_follows(first: str, second: str) -> SafetyProperty:
    """The safety property "*second* never happens after *first*"."""
    return SafetyProperty(
        name=f"never({first}..{second})",
        initial="ok",
        transitions={("ok", first): "armed", ("armed", second): "bad"},
        bad=["bad"],
    )


def at_most_n_occurrences(label: str, bound: int) -> SafetyProperty:
    """The safety property "*label* happens at most *bound* times"."""
    transitions = {(f"c{i}", label): f"c{i + 1}" for i in range(bound)}
    transitions[(f"c{bound}", label)] = "bad"
    return SafetyProperty(
        name=f"atmost({label},{bound})",
        initial="c0",
        transitions=transitions,
        bad=["bad"],
    )


def check_safety(lts: LTS, prop: SafetyProperty) -> Tuple[bool, Optional[List[str]]]:
    """Exact safety check by product exploration of a finite LTS.

    Returns ``(satisfied, counterexample)``; the counterexample is the
    violating visible word when the property fails.
    """
    start = (lts.initial, prop.initial)
    seen: Set[Tuple[State, str]] = {start}
    stack: List[Tuple[Tuple[State, str], Tuple[str, ...]]] = [(start, ())]
    while stack:
        (state, dfa_state), word = stack.pop()
        if dfa_state in prop.bad:
            return False, list(word)
        for label, target in lts.successors(state):
            next_dfa = prop.step(dfa_state, label)
            next_word = word if label == TAU else word + (label,)
            candidate = (target, next_dfa)
            if candidate not in seen:
                seen.add(candidate)
                stack.append((candidate, next_word))
    return True, None


def lts_terminates(lts: LTS) -> bool:
    """Exact termination of a finite LTS: no reachable cycle.

    (On finite systems an infinite run exists iff a cycle is reachable.)
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[State, int] = {}
    for root in lts.reachable_states():
        if colour.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[State, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            state, position = stack[-1]
            out = lts.successors(state)
            if position < len(out):
                stack[-1] = (state, position + 1)
                _, target = out[position]
                status = colour.get(target, WHITE)
                if status == GREY:
                    return False
                if status == WHITE:
                    colour[target] = GREY
                    stack.append((target, 0))
            else:
                colour[state] = BLACK
                stack.pop()
    return True


def transfer_safety(
    concrete: LTS, abstract: LTS, prop: SafetyProperty
) -> Tuple[bool, str]:
    """The Prop. 12 methodology, executed end-to-end on finite systems.

    Checks ``concrete ⊑_d abstract`` and ``abstract ⊨ prop``; when both
    hold, ``concrete ⊨ prop`` follows by compatibility.  Returns the
    transferred verdict and a description of which premise failed, if any.
    The test-suite additionally re-checks the conclusion directly,
    validating Proposition 12 itself on every instance.
    """
    from .simulation import d_simulates

    abstract_ok, _ = check_safety(abstract, prop)
    if not abstract_ok:
        return False, "abstract model violates the property (no transfer)"
    if not d_simulates(concrete, abstract):
        return False, "concrete is not ⊑_d-below abstract (no transfer)"
    return True, "transferred: abstract ⊨ φ and concrete ⊑_d abstract"
