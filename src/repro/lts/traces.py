"""Trace languages of finite LTSs.

The paper compares the expressive power of RP schemes, PA and Petri nets
through the *languages* they generate.  For finite (or truncated) systems
we work with bounded-length languages:

* **strong traces**: label sequences of runs, τ included;
* **weak traces**: visible-label sequences, τ abstracted away —
  the notion used for the RP-vs-PA and RP-vs-PN comparisons;
* **completed weak traces**: weak traces of runs ending in a state with no
  outgoing transitions (for RP schemes: runs reaching ``∅``).

All languages returned are prefix-closed except the completed one.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from ..core.alphabet import TAU
from .lts import LTS, State

Word = Tuple[str, ...]


def strong_traces(lts: LTS, max_length: int) -> FrozenSet[Word]:
    """All label sequences (τ included) of length ≤ *max_length*."""
    traces: Set[Word] = {()}
    seen: Set[Tuple[State, Word]] = {(lts.initial, ())}
    stack: List[Tuple[State, Word]] = [(lts.initial, ())]
    while stack:
        state, word = stack.pop()
        if len(word) == max_length:
            continue
        for label, target in lts.successors(state):
            extended = word + (label,)
            traces.add(extended)
            candidate = (target, extended)
            if candidate not in seen:
                seen.add(candidate)
                stack.append(candidate)
    return frozenset(traces)


def weak_traces(lts: LTS, max_length: int) -> FrozenSet[Word]:
    """All visible-label sequences of length ≤ *max_length* (τ-abstracted).

    Works on the τ-closure graph, so arbitrarily long (even cyclic) silent
    stretches between visible actions are handled exactly.
    """
    traces: Set[Word] = {()}
    seen: Set[Tuple[State, Word]] = set()
    stack: List[Tuple[State, Word]] = []
    for settled in lts.tau_closure(lts.initial):
        entry = (settled, ())
        seen.add(entry)
        stack.append(entry)
    while stack:
        state, word = stack.pop()
        if len(word) == max_length:
            continue
        for label, target in lts.successors(state):
            if label == TAU:
                continue  # silent steps are folded into the closures
            extended = word + (label,)
            traces.add(extended)
            for settled in lts.tau_closure(target):
                candidate = (settled, extended)
                if candidate not in seen:
                    seen.add(candidate)
                    stack.append(candidate)
    return frozenset(traces)


def completed_weak_traces(lts: LTS, max_length: int) -> FrozenSet[Word]:
    """Weak traces of runs ending in a transition-less state."""
    results: Set[Word] = set()
    start = (lts.initial, ())
    seen: Set[Tuple[State, Word]] = {start}
    stack: List[Tuple[State, Word]] = [start]
    while stack:
        state, word = stack.pop()
        if not lts.successors(state):
            results.add(word)
        for label, target in lts.successors(state):
            extended = word if label == TAU else word + (label,)
            if len(extended) > max_length:
                continue
            candidate = (target, extended)
            if candidate not in seen:
                seen.add(candidate)
                stack.append(candidate)
    return frozenset(results)


def weak_trace_equivalent(left: LTS, right: LTS, max_length: int) -> bool:
    """Equality of weak trace languages up to *max_length*."""
    return weak_traces(left, max_length) == weak_traces(right, max_length)


def weak_trace_included(left: LTS, right: LTS, max_length: int) -> bool:
    """Inclusion of weak trace languages up to *max_length*."""
    return weak_traces(left, max_length) <= weak_traces(right, max_length)
