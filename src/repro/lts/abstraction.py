"""State-space abstractions between the paper's models.

The Preservation Theorem relates the interpreted model to the abstract one
through the *forgetful* projection that erases memory: an interpreted
global state ``⟨u, σ_I⟩`` maps to the hierarchical state obtained by
dropping ``u`` and each invocation's local memory.  This module provides
the generic functoriality (:func:`map_lts`) plus the correctness check
that every concrete run projects to an abstract run
(:func:`is_projection_consistent`), which is the structural half of
Theorem 10's proof.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Tuple

from .lts import LTS, State


def map_lts(lts: LTS, fn: Callable[[State], State]) -> LTS:
    """The image of *lts* under a state map (labels preserved).

    The image of a transition system under any function is simulated by…
    nothing in general — but when *fn* is the memory-forgetting projection
    and the target is ``M_G``, every projected edge is a genuine ``M_G``
    edge (the interpreted rules refine the abstract ones), which
    :func:`is_projection_consistent` verifies edge by edge.
    """
    image = LTS(fn(lts.initial))
    for state in lts.states:
        image.add_state(fn(state))
    for source, label, target in lts.edges():
        image.add_transition(fn(source), label, fn(target))
    return image


def is_projection_consistent(
    concrete: LTS,
    abstract_successors: Callable[[State], list],
    fn: Callable[[State], State],
) -> Optional[Tuple[State, str, State]]:
    """Check every concrete edge projects to an enabled abstract edge.

    *abstract_successors* maps an abstract state to its ``(label, target)``
    pairs (e.g. via :class:`repro.core.semantics.AbstractSemantics`).
    Returns ``None`` on success or the first offending concrete edge.
    This is the "Correctness is clear because when we forget the memory
    components of a behavior of ``M_I`` we get a behavior of ``M_G``"
    argument of Proposition 13, machine-checked.
    """
    for source, label, target in concrete.edges():
        abstract_source = fn(source)
        abstract_target = fn(target)
        enabled = abstract_successors(abstract_source)
        if (label, abstract_target) not in enabled:
            return (source, label, target)
    return None
