"""Simulations, bisimulations and the divergence-preserving ``⊑_d``.

Theorem 10 (the Preservation Theorem) states ``M_I_G ⊑_d M_G`` where
``⊑_d`` is "a divergence preserving version of the classical τ-simulation
quasi-ordering [Wal88]".  On finite LTSs (explored fragments of the
models) the relation is computed here by greatest-fixpoint refinement:

``p ⊑_d q`` iff there is a relation ``R ∋ (p, q)`` such that ``p' R q'``
implies

* for every ``p' →a p''`` there is a weak ``q' ⇒a q''`` with
  ``p'' R q''``  (``⇒a`` is ``τ* a τ*`` for visible ``a`` and ``τ*`` —
  possibly empty — for ``a = τ``), and
* if ``p'`` diverges (has an infinite τ-run) then so does ``q'``.

Dropping the divergence clause gives the classical weak simulation; using
strong transitions gives strong simulation; symmetrising gives the
(bi)simulations.  All computations are exact fixpoints on finite systems.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from ..core.alphabet import TAU
from .lts import LTS, State

Pair = Tuple[State, State]


def _greatest_simulation(
    left: LTS,
    right: LTS,
    weak: bool,
    divergence: bool,
) -> Set[Pair]:
    """The greatest (weak/strong, divergence-respecting) simulation
    between the state sets of *left* and *right*."""
    left_states = sorted(left.states, key=repr)
    right_states = sorted(right.states, key=repr)
    divergent_left = {s for s in left_states if left.diverges(s)} if divergence else set()
    divergent_right = {s for s in right_states if right.diverges(s)} if divergence else set()
    relation: Set[Pair] = set()
    for p in left_states:
        for q in right_states:
            if divergence and p in divergent_left and q not in divergent_right:
                continue
            relation.add((p, q))

    # memoised weak-successor computation on the right side
    weak_post_cache: Dict[Tuple[State, str], Set[State]] = {}

    def right_post(q: State, label: str) -> Set[State]:
        if not weak:
            return set(right.post(q, label))
        key = (q, label)
        if key not in weak_post_cache:
            weak_post_cache[key] = right.weak_post(q, label)
        return weak_post_cache[key]

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            p, q = pair
            ok = True
            for label, p2 in left.successors(p):
                candidates = right_post(q, label)
                if not any((p2, q2) in relation for q2 in candidates):
                    ok = False
                    break
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


def strong_simulation(left: LTS, right: LTS) -> Set[Pair]:
    """The greatest strong simulation of *left* by *right*."""
    return _greatest_simulation(left, right, weak=False, divergence=False)


def weak_simulation(left: LTS, right: LTS) -> Set[Pair]:
    """The greatest weak (τ-abstracting) simulation of *left* by *right*."""
    return _greatest_simulation(left, right, weak=True, divergence=False)


def d_simulation(left: LTS, right: LTS) -> Set[Pair]:
    """The greatest divergence-preserving weak simulation (``⊑_d``)."""
    return _greatest_simulation(left, right, weak=True, divergence=True)


def strongly_simulates(left: LTS, right: LTS) -> bool:
    """``left ⊑ right`` (strong): the initial states are related."""
    return (left.initial, right.initial) in strong_simulation(left, right)


def weakly_simulates(left: LTS, right: LTS) -> bool:
    """``left ⊑ right`` (weak)."""
    return (left.initial, right.initial) in weak_simulation(left, right)


def d_simulates(left: LTS, right: LTS) -> bool:
    """``left ⊑_d right`` — the Preservation Theorem's relation."""
    return (left.initial, right.initial) in d_simulation(left, right)


def strong_bisimulation(left: LTS, right: LTS) -> Set[Pair]:
    """The greatest strong bisimulation between *left* and *right*."""
    relation = {
        (p, q)
        for (p, q) in _greatest_simulation(left, right, weak=False, divergence=False)
    }
    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            p, q = pair
            ok = True
            for label, p2 in left.successors(p):
                if not any((p2, q2) in relation for q2 in right.post(q, label)):
                    ok = False
                    break
            if ok:
                for label, q2 in right.successors(q):
                    if not any((p2, q2) in relation for p2 in left.post(p, label)):
                        ok = False
                        break
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


def strongly_bisimilar(left: LTS, right: LTS) -> bool:
    """``left ~ right`` (strong bisimilarity of the initial states)."""
    return (left.initial, right.initial) in strong_bisimulation(left, right)


def weak_bisimulation(left: LTS, right: LTS) -> Set[Pair]:
    """The greatest weak (observational) bisimulation.

    Both transfer directions use weak transitions (``τ* a τ*``; possibly
    empty for ``τ``).
    """
    relation = set(_greatest_simulation(left, right, weak=True, divergence=False))
    left_post: Dict[Tuple[State, str], Set[State]] = {}
    right_post: Dict[Tuple[State, str], Set[State]] = {}

    def weak_post(lts: LTS, cache, state: State, label: str) -> Set[State]:
        key = (state, label)
        if key not in cache:
            cache[key] = lts.weak_post(state, label)
        return cache[key]

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            p, q = pair
            ok = True
            for label, p2 in left.successors(p):
                if not any(
                    (p2, q2) in relation
                    for q2 in weak_post(right, right_post, q, label)
                ):
                    ok = False
                    break
            if ok:
                for label, q2 in right.successors(q):
                    if not any(
                        (p2, q2) in relation
                        for p2 in weak_post(left, left_post, p, label)
                    ):
                        ok = False
                        break
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


def weakly_bisimilar(left: LTS, right: LTS) -> bool:
    """``left ≈ right`` (weak bisimilarity of the initial states)."""
    return (left.initial, right.initial) in weak_bisimulation(left, right)


def check_simulation_relation(
    left: LTS, right: LTS, relation: Set[Pair], weak: bool = True, divergence: bool = True
) -> Optional[str]:
    """Independently verify that *relation* is a (d-)simulation.

    Returns ``None`` when the relation checks out, or a human-readable
    description of the first violated transfer condition — the test-suite
    uses this to validate certificates produced elsewhere.
    """
    for (p, q) in relation:
        if divergence and left.diverges(p) and not right.diverges(q):
            return f"divergence of {p!r} not matched by {q!r}"
        for label, p2 in left.successors(p):
            candidates = right.weak_post(q, label) if weak else set(right.post(q, label))
            if not any((p2, q2) in relation for q2 in candidates):
                return f"{p!r} --{label}--> {p2!r} not matched from {q!r}"
    return None
