"""Bisimulation minimisation of finite LTSs (partition refinement).

The classic Kanellakis–Smolka / Paige–Tarjan-style refinement: start from
one block, split blocks by their label-indexed successor-block signatures
until stable.  The quotient is strongly bisimilar to the input — checked
in the test-suite via :func:`repro.lts.simulation.strongly_bisimilar` —
and is the canonical minimal representative, useful for comparing
explored ``M_G``/``M_I_G`` fragments structurally and for shrinking
inputs to the (quadratic) simulation solvers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .lts import LTS, State


def bisimulation_partition(lts: LTS) -> Dict[State, int]:
    """Map each state to its bisimulation-class index."""
    states = sorted(lts.states, key=repr)
    block_of: Dict[State, int] = {state: 0 for state in states}
    while True:
        signatures: Dict[State, Tuple] = {}
        for state in states:
            signature = frozenset(
                (label, block_of[target]) for label, target in lts.successors(state)
            )
            signatures[state] = signature
        renumber: Dict[Tuple[int, FrozenSet], int] = {}
        new_block_of: Dict[State, int] = {}
        for state in states:
            key = (block_of[state], signatures[state])
            if key not in renumber:
                renumber[key] = len(renumber)
            new_block_of[state] = renumber[key]
        if new_block_of == block_of:
            return block_of
        block_of = new_block_of


def quotient(lts: LTS) -> Tuple[LTS, Dict[State, int]]:
    """The bisimulation quotient of *lts* and the state→class map.

    Quotient states are class indices; the initial state maps to its
    class.  The result is strongly bisimilar to the input and minimal
    among strongly bisimilar LTSs (up to isomorphism).
    """
    block_of = bisimulation_partition(lts)
    result = LTS(initial=block_of[lts.initial])
    for state in lts.states:
        result.add_state(block_of[state])
        for label, target in lts.successors(state):
            result.add_transition(block_of[state], label, block_of[target])
    return result, block_of


def minimised_size(lts: LTS) -> int:
    """Number of bisimulation classes (size of the quotient)."""
    return len(set(bisimulation_partition(lts).values()))
