"""Generic finite labelled transition systems.

The paper works with three transition-system models — the abstract ``M_G``,
the interpreted ``M_I_G`` and the machine model ``P_G`` — and relates them
by behavioural preorders (Theorem 10).  This module provides the common
finite-LTS substrate those comparisons are computed on: explored fragments
of any of the three models convert to :class:`LTS`, and
:mod:`repro.lts.simulation` computes (bi)simulations and the
divergence-preserving simulation ``⊑_d`` between them.

States may be arbitrary hashable objects; labels are strings with
:data:`repro.core.alphabet.TAU` as the silent label.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.alphabet import TAU

State = Hashable


class LTS:
    """A finite labelled transition system ``⟨S, A_τ, →, s0⟩``."""

    def __init__(self, initial: State) -> None:
        self.initial = initial
        self.states: Set[State] = {initial}
        self._out: Dict[State, List[Tuple[str, State]]] = defaultdict(list)
        self._edge_set: Set[Tuple[State, str, State]] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_state(self, state: State) -> None:
        """Add an isolated state (no-op when present)."""
        self.states.add(state)

    def add_transition(self, source: State, label: str, target: State) -> None:
        """Add ``source --label--> target``, creating states as needed.

        Duplicate edges are ignored (the relation is a set).
        """
        edge = (source, label, target)
        if edge in self._edge_set:
            return
        self._edge_set.add(edge)
        self.states.add(source)
        self.states.add(target)
        self._out[source].append((label, target))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successors(self, state: State) -> List[Tuple[str, State]]:
        """Outgoing ``(label, target)`` pairs of *state*."""
        return list(self._out.get(state, ()))

    def post(self, state: State, label: str) -> List[State]:
        """Targets of *label*-transitions from *state*."""
        return [t for lab, t in self._out.get(state, ()) if lab == label]

    def labels(self) -> FrozenSet[str]:
        """All labels appearing on edges."""
        return frozenset(label for _, label, _ in self._edge_set)

    def edges(self) -> Iterator[Tuple[State, str, State]]:
        """All edges (in insertion order per source)."""
        for source, out in self._out.items():
            for label, target in out:
                yield (source, label, target)

    @property
    def num_transitions(self) -> int:
        return len(self._edge_set)

    def is_deterministic(self) -> bool:
        """No state has two distinct same-label successors."""
        for state in self.states:
            seen = set()
            for label, target in self._out.get(state, ()):
                if label in seen:
                    return False
                seen.add(label)
        return True

    def reachable_states(self) -> Set[State]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for _, target in self._out.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def restricted_to_reachable(self) -> "LTS":
        """A copy containing only the reachable part."""
        reachable = self.reachable_states()
        out = LTS(self.initial)
        for state in reachable:
            out.add_state(state)
            for label, target in self._out.get(state, ()):
                out.add_transition(state, label, target)
        return out

    # ------------------------------------------------------------------
    # Silent-step structure (used by weak relations and divergence)
    # ------------------------------------------------------------------

    def tau_closure(self, state: State) -> Set[State]:
        """States reachable from *state* by ``τ*``."""
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for label, target in self._out.get(current, ()):
                if label == TAU and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def weak_post(self, state: State, label: str) -> Set[State]:
        """Weak transition targets: ``τ* a τ*`` (or ``τ*`` when ``a = τ``)."""
        before = self.tau_closure(state)
        if label == TAU:
            return before
        after: Set[State] = set()
        for mid in before:
            for lab, target in self._out.get(mid, ()):
                if lab == label:
                    after.update(self.tau_closure(target))
        return after

    def diverges(self, state: State) -> bool:
        """``True`` iff an infinite ``τ``-run starts at *state*.

        On a finite LTS this means a τ-cycle is τ-reachable from *state*.
        """
        return state in self._divergent_states()

    def _divergent_states(self) -> Set[State]:
        # states on a τ-cycle, then backward-closed under τ-predecessor
        tau_succ: Dict[State, List[State]] = defaultdict(list)
        tau_pred: Dict[State, List[State]] = defaultdict(list)
        for source, label, target in self._edge_set:
            if label == TAU:
                tau_succ[source].append(target)
                tau_pred[target].append(source)
        on_cycle = {
            state
            for state in self.states
            if self._tau_cycle_through(state, tau_succ)
        }
        divergent = set(on_cycle)
        frontier = list(on_cycle)
        while frontier:
            state = frontier.pop()
            for pred in tau_pred.get(state, ()):
                if pred not in divergent:
                    divergent.add(pred)
                    frontier.append(pred)
        return divergent

    def _tau_cycle_through(self, state: State, tau_succ: Dict) -> bool:
        seen: Set[State] = set()
        frontier = list(tau_succ.get(state, ()))
        while frontier:
            current = frontier.pop()
            if current == state:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(tau_succ.get(current, ()))
        return False

    def __repr__(self) -> str:
        return (
            f"LTS(states={len(self.states)}, "
            f"transitions={self.num_transitions}, initial={self.initial!r})"
        )
