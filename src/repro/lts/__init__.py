"""Generic LTS toolkit: traces, simulations, ``⊑_d``, safety transfer."""

from .abstraction import is_projection_consistent, map_lts
from .lts import LTS
from .properties import (
    SafetyProperty,
    at_most_n_occurrences,
    check_safety,
    lts_terminates,
    never_follows,
    never_occurs,
    transfer_safety,
)
from .simulation import (
    check_simulation_relation,
    weak_bisimulation,
    weakly_bisimilar,
    d_simulates,
    d_simulation,
    strong_bisimulation,
    strong_simulation,
    strongly_bisimilar,
    strongly_simulates,
    weak_simulation,
    weakly_simulates,
)
from .traces import (
    completed_weak_traces,
    strong_traces,
    weak_trace_equivalent,
    weak_trace_included,
    weak_traces,
)
from .minimize import bisimulation_partition, minimised_size, quotient

__all__ = [
    "bisimulation_partition",
    "minimised_size",
    "quotient",

    "is_projection_consistent",
    "map_lts",
    "LTS",
    "SafetyProperty",
    "at_most_n_occurrences",
    "check_safety",
    "lts_terminates",
    "never_follows",
    "never_occurs",
    "transfer_safety",
    "check_simulation_relation",
    "weak_bisimulation",
    "weakly_bisimilar",
    "d_simulates",
    "d_simulation",
    "strong_bisimulation",
    "strong_simulation",
    "strongly_bisimilar",
    "strongly_simulates",
    "weak_simulation",
    "weakly_simulates",
    "completed_weak_traces",
    "strong_traces",
    "weak_trace_equivalent",
    "weak_trace_included",
    "weak_traces",
]
