"""Place/transition Petri nets.

The paper contrasts RP schemes with Petri nets: hierarchical states can be
seen as markings "with an additional tree-like structure between tokens",
RP schemes and Petri nets generate incomparable language classes, and the
Theorem 9 construction combines "the power of Petri Nets and BPA
synchronization".  This subpackage provides the standard P/T-net substrate
those comparisons live on: nets, markings, firing, the Karp–Miller
coverability tree and backward coverability.

Markings are immutable tuples indexed by place order, so they hash and
compare cheaply; ω (unbounded) components only appear inside the
Karp–Miller machinery (:mod:`repro.petri.karp_miller`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import RPError


class PetriError(RPError):
    """A malformed Petri net."""


Marking = Tuple[int, ...]


@dataclass(frozen=True)
class PTransition:
    """One net transition with pre/post vectors and a label."""

    name: str
    pre: Marking
    post: Marking
    label: str


class PetriNet:
    """A labelled place/transition net with an initial marking."""

    def __init__(
        self,
        places: Sequence[str],
        transitions: Iterable[Mapping],
        initial: Mapping[str, int],
    ) -> None:
        self.places: Tuple[str, ...] = tuple(places)
        if len(set(self.places)) != len(self.places):
            raise PetriError("duplicate place names")
        self._index: Dict[str, int] = {p: i for i, p in enumerate(self.places)}
        self.transitions: List[PTransition] = []
        for spec in transitions:
            self.transitions.append(
                PTransition(
                    name=spec["name"],
                    pre=self._vector(spec.get("pre", {})),
                    post=self._vector(spec.get("post", {})),
                    label=spec.get("label", spec["name"]),
                )
            )
        self.initial: Marking = self._vector(initial)

    def _vector(self, counts: Mapping[str, int]) -> Marking:
        vector = [0] * len(self.places)
        for place, count in counts.items():
            if place not in self._index:
                raise PetriError(f"unknown place {place!r}")
            if count < 0:
                raise PetriError(f"negative token count for {place!r}")
            vector[self._index[place]] = count
        return tuple(vector)

    def marking(self, **counts: int) -> Marking:
        """Build a marking from keyword place counts."""
        return self._vector(counts)

    def tokens(self, marking: Marking, place: str) -> int:
        """Token count of *place* in *marking*."""
        return marking[self._index[place]]

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def enabled(self, marking: Marking) -> List[PTransition]:
        """Transitions enabled at *marking*."""
        return [
            t
            for t in self.transitions
            if all(m >= p for m, p in zip(marking, t.pre))
        ]

    def fire(self, marking: Marking, transition: PTransition) -> Marking:
        """The marking after firing *transition* (must be enabled)."""
        if any(m < p for m, p in zip(marking, transition.pre)):
            raise PetriError(f"transition {transition.name!r} is not enabled")
        return tuple(
            m - p + q for m, p, q in zip(marking, transition.pre, transition.post)
        )

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        """``(label, marking')`` for each enabled firing."""
        return [(t.label, self.fire(marking, t)) for t in self.enabled(marking)]

    # ------------------------------------------------------------------
    # Exploration (bounded nets / bounded horizons)
    # ------------------------------------------------------------------

    def reachable_markings(self, max_markings: int = 100_000) -> Optional[set]:
        """The reachability set, or ``None`` when the budget is hit
        (possibly unbounded)."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            marking = frontier.pop()
            for _, target in self.successors(marking):
                if target not in seen:
                    if len(seen) >= max_markings:
                        return None
                    seen.add(target)
                    frontier.append(target)
        return seen

    def to_lts(self, max_markings: int = 100_000):
        """The reachability graph as an LTS (raises if unbounded)."""
        from ..lts.lts import LTS

        markings = self.reachable_markings(max_markings)
        if markings is None:
            raise PetriError(
                f"the net has more than {max_markings} reachable markings"
            )
        lts = LTS(initial=self.initial)
        for marking in markings:
            for label, target in self.successors(marking):
                lts.add_transition(marking, label, target)
        return lts

    def traces(self, max_length: int) -> frozenset:
        """The prefix-closed label language up to *max_length*."""
        traces = {()}
        seen = {(self.initial, ())}
        stack = [(self.initial, ())]
        while stack:
            marking, word = stack.pop()
            if len(word) == max_length:
                continue
            for label, target in self.successors(marking):
                extended = word + (label,)
                traces.add(extended)
                key = (target, extended)
                if key not in seen:
                    seen.add(key)
                    stack.append(key)
        return frozenset(traces)

    def __repr__(self) -> str:
        return (
            f"PetriNet(places={len(self.places)}, "
            f"transitions={len(self.transitions)})"
        )
