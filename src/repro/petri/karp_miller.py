"""Karp–Miller coverability trees for Petri nets.

The classic construction: explore markings, replacing components that grow
along a branch by ω (acceleration).  The finite tree decides boundedness
(no ω anywhere iff bounded, with the reachability set bounded by the
tree), place boundedness, and coverability (a target is coverable iff some
tree node dominates it).

Petri nets are the textbook well-structured system; having the exact
classical algorithms here gives the test-suite a fully trusted baseline
to cross-validate the RP-side analysis machinery's behaviour on the
fragment where the two models overlap (e.g. wait-free spawning schemes
whose token-counting abstraction is a net).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Tracer
from .net import Marking, PetriNet

#: The ω value (unbounded component).
OMEGA = -1


def _leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Componentwise ≤ with ω on top."""
    return all(y == OMEGA or (x != OMEGA and x <= y) for x, y in zip(a, b))


def _accelerated(ancestor, current):
    """Acceleration: components strictly grown over *ancestor* become ω."""
    out = []
    for x, y in zip(ancestor, current):
        if y == OMEGA or x == OMEGA:
            out.append(OMEGA)
        elif x < y:
            out.append(OMEGA)
        else:
            out.append(y)
    return tuple(out)


@dataclass
class KMNode:
    """A node of the coverability tree."""

    marking: Tuple[int, ...]
    parent: Optional["KMNode"] = None
    children: List["KMNode"] = field(default_factory=list)

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


def _omega_enabled(marking: Tuple[int, ...], pre: Marking) -> bool:
    return all(m == OMEGA or m >= p for m, p in zip(marking, pre))


def _omega_fire(marking: Tuple[int, ...], pre: Marking, post: Marking) -> Tuple[int, ...]:
    return tuple(
        OMEGA if m == OMEGA else m - p + q for m, p, q in zip(marking, pre, post)
    )


def coverability_tree(
    net: PetriNet, max_nodes: int = 200_000, tracer: Optional[Tracer] = None
) -> KMNode:
    """Build the Karp–Miller tree (guaranteed finite; budget as safety)."""
    if tracer is None:
        tracer = Tracer()
    root = KMNode(marking=net.initial)
    work: List[KMNode] = [root]
    count = 1
    accelerations = 0
    with tracer.span(
        "petri.karp-miller", places=len(net.places), budget=max_nodes
    ) as span:
        while work:
            node = work.pop()
            # stop extension when an ancestor has the identical marking
            if any(anc.marking == node.marking for anc in node.ancestors()):
                continue
            for transition in net.transitions:
                if not _omega_enabled(node.marking, transition.pre):
                    continue
                fired = _omega_fire(node.marking, transition.pre, transition.post)
                for anc in [node] + list(node.ancestors()):
                    if _leq(anc.marking, fired):
                        widened = _accelerated(anc.marking, fired)
                        if widened != fired:
                            accelerations += 1
                            fired = widened
                child = KMNode(marking=fired, parent=node)
                node.children.append(child)
                work.append(child)
                count += 1
                if count > max_nodes:  # pragma: no cover - classical bound
                    raise RuntimeError("Karp-Miller budget exceeded")
        span.set(nodes=count, accelerations=accelerations)
    return root


def _all_nodes(root: KMNode):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


def is_bounded(net: PetriNet) -> bool:
    """Boundedness: no ω in the coverability tree."""
    return all(
        OMEGA not in node.marking for node in _all_nodes(coverability_tree(net))
    )


def unbounded_places(net: PetriNet) -> List[str]:
    """Places receiving ω somewhere in the tree."""
    omega_positions = set()
    for node in _all_nodes(coverability_tree(net)):
        for position, value in enumerate(node.marking):
            if value == OMEGA:
                omega_positions.add(position)
    return [net.places[i] for i in sorted(omega_positions)]


def coverable(net: PetriNet, target: Marking) -> bool:
    """Coverability via the tree: some node dominates *target*."""
    return any(
        _leq(target, node.marking) for node in _all_nodes(coverability_tree(net))
    )
