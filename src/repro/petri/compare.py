"""RP schemes versus Petri nets — the expressiveness comparison material.

The paper: "the expressive power of our RP schemes … is in some way larger
than Petri nets because RP schemes allow a distinction between parent and
child invocations.  On the other hand, they do not allow arbitrary
synchronization between concurrent components.  Formally … Petri nets and
RP schemes generate incomparable classes [of languages]."

The incomparability proof is a citation-level theorem; what this module
provides are the two *witness systems* traditionally used for it, each
verified against its mathematical language definition in the test-suite:

* :func:`anbncn_net` — a Petri net whose completed-run language is
  ``{aⁿ bⁿ cⁿ}`` (not context-free, hence not a PA ≡ RP language);
* :func:`nested_anbn_scheme` — an RP scheme whose terminated-run language
  is ``{aⁿ bⁿ | n ≥ 1}`` *generated through recursion depth with a
  wait-join*, i.e. the Dyck-like nesting a net cannot track without a
  stack (the classical argument: with two bracket types the language of
  balanced strings is not a Petri-net language);
* :func:`token_counting_abstraction` — the counting abstraction of a
  scheme (hierarchical state ↦ marking), exhibiting exactly what the
  tree structure adds: the abstraction of an RP scheme is a net, and the
  wait rule is what it fails to capture.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..core.builder import SchemeBuilder
from ..core.hstate import HState
from ..core.scheme import NodeKind, RPScheme
from .net import PetriNet


def anbncn_net() -> PetriNet:
    """A net accepting ``aⁿ bⁿ cⁿ`` as completed sequences.

    Phases guarded by a control place; counting places ensure equal
    numbers.  The *completed* language (runs draining the control into
    the final place with counters empty) is ``{aⁿ bⁿ cⁿ | n ≥ 0}``.
    """
    return PetriNet(
        places=["phase_a", "phase_b", "phase_c", "count_ab", "count_bc"],
        transitions=[
            {"name": "a", "pre": {"phase_a": 1}, "post": {"phase_a": 1, "count_ab": 1}},
            {"name": "go_b", "pre": {"phase_a": 1}, "post": {"phase_b": 1}, "label": "τ"},
            {
                "name": "b",
                "pre": {"phase_b": 1, "count_ab": 1},
                "post": {"phase_b": 1, "count_bc": 1},
            },
            {"name": "go_c", "pre": {"phase_b": 1}, "post": {"phase_c": 1}, "label": "τ"},
            {"name": "c", "pre": {"phase_c": 1, "count_bc": 1}, "post": {"phase_c": 1}},
        ],
        initial={"phase_a": 1},
    )


def anbncn_completed_words(net: PetriNet, max_length: int) -> FrozenSet[Tuple[str, ...]]:
    """Completed words: runs ending with all counters empty in phase c."""
    final_phase = net._index["phase_c"]
    count_ab = net._index["count_ab"]
    count_bc = net._index["count_bc"]
    results = set()
    stack = [(net.initial, ())]
    seen = {(net.initial, ())}
    while stack:
        marking, word = stack.pop()
        if (
            marking[final_phase] == 1
            and marking[count_ab] == 0
            and marking[count_bc] == 0
        ):
            results.add(word)
        for label, target in net.successors(marking):
            extended = word if label == "τ" else word + (label,)
            if len(extended) > max_length:
                continue
            key = (target, extended)
            if key not in seen:
                seen.add(key)
                stack.append(key)
    return frozenset(results)


def nested_anbn_scheme() -> RPScheme:
    """An RP scheme whose terminated language is ``{aⁿ bⁿ | n ≥ 1}``.

    ``p``: action a; test t: *then* → {pcall p; wait}; *else* → skip;
    action b; end.  Because the parent blocks at its wait until the child
    (and recursively the whole nest) has finished, every terminated run
    reads ``aⁿ tⁿ bⁿ`` — projecting the test label away, a perfectly
    nested ``aⁿ bⁿ`` produced by *recursion depth*, the mechanism nets
    lack.  (We keep the test label visible; the language over {a, b} is
    obtained by erasing ``t``, which the comparison functions do.)
    """
    b = SchemeBuilder("anbn")
    b.action("p0", "a", "p1")
    b.test("p1", "t", then="p2", orelse="p4")
    b.pcall("p2", invoked="p0", succ="p3")
    b.wait("p3", "p4")
    b.action("p4", "b", "p5")
    b.end("p5")
    b.procedure("p", "p0")
    return b.build(root="p0")


def scheme_terminated_words(
    scheme: RPScheme, max_length: int, erase: FrozenSet[str] = frozenset({"t"})
) -> FrozenSet[Tuple[str, ...]]:
    """Words of runs reaching ∅, with τ and *erase* labels dropped."""
    from ..core.alphabet import TAU
    from ..core.semantics import AbstractSemantics

    semantics = AbstractSemantics(scheme)
    results = set()
    start = (semantics.initial_state, ())
    seen = {start}
    stack = [start]
    while stack:
        state, word = stack.pop()
        if state.is_empty():
            results.add(word)
            continue
        for transition in semantics.successors(state):
            if transition.label == TAU or transition.label in erase:
                extended = word
            else:
                extended = word + (transition.label,)
            if len(extended) > max_length:
                continue
            key = (transition.target, extended)
            if key not in seen:
                seen.add(key)
                stack.append(key)
    return frozenset(results)


def token_counting_abstraction(scheme: RPScheme) -> PetriNet:
    """The counting abstraction: hierarchical states as plain markings.

    Each scheme node becomes a place; action/test/call/end become net
    transitions moving tokens accordingly.  The ``wait`` rule is the one
    construct this abstraction *cannot* express faithfully — it requires
    "no children", which is not a marking property; here it is
    over-approximated by an unconditional move, so the net simulates the
    scheme but not conversely.  This is the formal content of
    "hierarchical states are markings plus a parent-child structure".
    """
    transitions = []
    for node in scheme:
        if node.kind in (NodeKind.ACTION, NodeKind.TEST):
            for index, succ in enumerate(node.successors):
                transitions.append(
                    {
                        "name": f"{node.id}->{succ}",
                        "pre": {node.id: 1},
                        "post": {succ: 1},
                        "label": node.label,
                    }
                )
        elif node.kind is NodeKind.PCALL:
            transitions.append(
                {
                    "name": f"{node.id}:call",
                    "pre": {node.id: 1},
                    "post": {node.successors[0]: 1, node.invoked: 1},
                    "label": "τ",
                }
            )
        elif node.kind is NodeKind.WAIT:
            transitions.append(
                {
                    "name": f"{node.id}:wait",
                    "pre": {node.id: 1},
                    "post": {node.successors[0]: 1},
                    "label": "τ",
                }
            )
        elif node.kind is NodeKind.END:
            transitions.append(
                {"name": f"{node.id}:end", "pre": {node.id: 1}, "post": {}, "label": "τ"}
            )
    return PetriNet(
        places=list(scheme.node_ids),
        transitions=transitions,
        initial={scheme.root: 1},
    )


def marking_of(scheme: RPScheme, net: PetriNet, state: HState):
    """The marking corresponding to a hierarchical state (Fig. 4 view)."""
    counts = state.node_multiset()
    return net.marking(**{place: counts.get(place, 0) for place in net.places})
