"""Communication-free nets (BPP) embedded into RP schemes.

A Petri net is *communication-free* when every transition consumes exactly
one token from exactly one place — the net-side characterisation of Basic
Parallel Processes.  Such nets cannot synchronise, which is precisely the
restriction the paper attributes to RP schemes ("they do not allow
arbitrary synchronization between concurrent components"), and indeed the
BPP fragment embeds into RP schemes constructively:

* each **place** becomes a procedure; a token in ``p`` is a live
  invocation in ``proc_p``;
* each **transition** ``t : p → {q1, …, qk}`` becomes a branch of
  ``proc_p``: perform the visible action ``t``, ``pcall`` each output
  procedure, ``end``;
* the nondeterministic **choice** between the transitions enabled at a
  place is a chain of test nodes labelled :data:`CHOICE_LABEL` — RP
  schemes have no silent choice construct, so the simulation is faithful
  up to erasing that designated label (the same homomorphic-erasure
  convention as the other comparison witnesses in this package);
* the **initial marking** becomes a bootstrap chain of pcalls.

:func:`traces_match` checks the embedding: the transition-label language
of the net equals the ``CHOICE_LABEL``-erased weak-trace language of the
scheme, up to a length bound.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..core.alphabet import TAU
from ..core.builder import SchemeBuilder
from ..core.scheme import RPScheme
from ..core.semantics import AbstractSemantics
from .net import PetriError, PetriNet

#: The erased decision label (see the module docstring).
CHOICE_LABEL = "choose"


def is_communication_free(net: PetriNet) -> bool:
    """Every transition consumes exactly one token from one place."""
    return all(sum(t.pre) == 1 for t in net.transitions)


def bpp_net_to_scheme(net: PetriNet) -> RPScheme:
    """Embed a communication-free net into an RP scheme.

    Raises :class:`PetriError` when the net synchronises (some transition
    has total pre-weight ≠ 1).
    """
    if not is_communication_free(net):
        raise PetriError("the net is not communication-free (BPP)")
    builder = SchemeBuilder(f"bpp_{len(net.places)}p")
    entries: Dict[str, str] = {place: f"pl_{place}" for place in net.places}

    for place in net.places:
        outgoing = [
            t for t in net.transitions if net.tokens(t.pre, place) == 1
        ]
        entry = entries[place]
        if not outgoing:
            # a dead-end token: the invocation can only linger; model it
            # as a self-looping choice (no transition will ever fire)
            builder.test(entry, CHOICE_LABEL, then=entry, orelse=entry)
            continue
        # chain of choice tests, one arm per transition; the final else
        # loops back to re-decide (fair to any interleaving)
        current = entry
        for index, transition in enumerate(outgoing):
            arm_entry = f"pl_{place}_t{index}"
            next_test = (
                f"pl_{place}_c{index + 1}" if index + 1 < len(outgoing) else entry
            )
            builder.test(current, CHOICE_LABEL, then=arm_entry, orelse=next_test)
            # the arm: visible action, then pcalls for each output token
            outputs: List[str] = []
            for output_place, weight in zip(net.places, transition.post):
                outputs.extend([output_place] * weight)
            previous = arm_entry
            builder.action(arm_entry, transition.label, f"{arm_entry}_s0")
            for position, output_place in enumerate(outputs):
                node = f"{arm_entry}_s{position}"
                builder.pcall(
                    node,
                    invoked=entries[output_place],
                    succ=f"{arm_entry}_s{position + 1}",
                )
            builder.end(f"{arm_entry}_s{len(outputs)}")
            current = next_test
        builder.procedure(f"proc_{place}", entry)

    # bootstrap: spawn one invocation per initial token, then end
    boot_positions: List[str] = []
    for place, count in zip(net.places, net.initial):
        boot_positions.extend([place] * count)
    for index, place in enumerate(boot_positions):
        builder.pcall(
            f"boot{index}", invoked=entries[place], succ=f"boot{index + 1}"
        )
    builder.end(f"boot{len(boot_positions)}")
    return builder.build(root="boot0" if boot_positions else f"boot{0}")


def scheme_bpp_traces(scheme: RPScheme, max_length: int, max_states: int = 200_000) -> FrozenSet[Tuple[str, ...]]:
    """Weak traces of the scheme with :data:`CHOICE_LABEL` erased."""
    semantics = AbstractSemantics(scheme)
    traces = {()}
    seen = {(semantics.initial_state, ())}
    stack = [(semantics.initial_state, ())]
    while stack:
        state, word = stack.pop()
        for transition in semantics.successors(state):
            if transition.label in (TAU, CHOICE_LABEL):
                extended = word
            else:
                if len(word) == max_length:
                    continue
                extended = word + (transition.label,)
                traces.add(extended)
            key = (transition.target, extended)
            if key not in seen:
                if len(seen) >= max_states:
                    raise PetriError(
                        f"trace exploration exceeded {max_states} states"
                    )
                seen.add(key)
                stack.append(key)
    return frozenset(traces)


def traces_match(net: PetriNet, max_length: int) -> bool:
    """Does the embedded scheme generate exactly the net's language
    (up to *max_length*, after erasing the choice label)?"""
    scheme = bpp_net_to_scheme(net)
    return scheme_bpp_traces(scheme, max_length) == net.traces(max_length)
