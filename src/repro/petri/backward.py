"""Backward coverability for Petri nets.

The Abdulla-style backward algorithm over the componentwise marking order
(Dickson's lemma): starting from the upward closure of the targets,
saturate with predecessor bases

    pred_t(↑m)  has basis  { max(pre_t, m - post_t + pre_t) }

until a fixpoint, then test the initial marking.  Exact in both
directions for every net (markings are fully compatible — no analogue of
the RP ``wait`` subtlety), which makes it a reference point for the
RP-side backward engine's behaviour.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..wqo.basis import UpwardClosedSet
from ..wqo.orderings import QuasiOrder
from .net import Marking, PetriNet, PTransition


def marking_order() -> QuasiOrder:
    """Componentwise ≤ on equal-length marking tuples."""
    return QuasiOrder(
        lambda a, b: len(a) == len(b) and all(x <= y for x, y in zip(a, b)),
        name="≤^k",
    )


def _pred_basis(transition: PTransition, target: Marking) -> Marking:
    """The minimal marking that can fire *transition* into ``↑target``."""
    return tuple(
        max(p, t - q + p)
        for p, q, t in zip(transition.pre, transition.post, target)
    )


def backward_coverable(net: PetriNet, targets: Sequence[Marking]) -> bool:
    """Is some marking of ``↑targets`` reachable from the initial marking?"""
    order = marking_order()
    reached = UpwardClosedSet(order, targets)
    frontier: List[Marking] = list(reached.basis)
    while frontier:
        fresh: List[Marking] = []
        for basis_element in frontier:
            for transition in net.transitions:
                predecessor = _pred_basis(transition, basis_element)
                if reached.add(predecessor):
                    fresh.append(predecessor)
        frontier = fresh
    return net.initial in reached
