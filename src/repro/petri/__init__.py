"""Petri net substrate: nets, Karp–Miller, backward coverability,
RP-vs-PN comparison material."""

from .backward import backward_coverable, marking_order
from .bpp import (
    CHOICE_LABEL,
    bpp_net_to_scheme,
    is_communication_free,
    scheme_bpp_traces,
    traces_match,
)
from .compare import (
    anbncn_completed_words,
    anbncn_net,
    marking_of,
    nested_anbn_scheme,
    scheme_terminated_words,
    token_counting_abstraction,
)
from .karp_miller import (
    OMEGA,
    coverability_tree,
    coverable,
    is_bounded,
    unbounded_places,
)
from .net import Marking, PetriError, PetriNet, PTransition

__all__ = [
    "CHOICE_LABEL",
    "bpp_net_to_scheme",
    "is_communication_free",
    "scheme_bpp_traces",
    "traces_match",
    "backward_coverable",
    "marking_order",
    "anbncn_completed_words",
    "anbncn_net",
    "marking_of",
    "nested_anbn_scheme",
    "scheme_terminated_words",
    "token_counting_abstraction",
    "OMEGA",
    "coverability_tree",
    "coverable",
    "is_bounded",
    "unbounded_places",
    "Marking",
    "PetriError",
    "PetriNet",
    "PTransition",
]
