"""A standard library of RP programs.

Realistic recursive-parallel workloads in RP source form, exercised by
tests, benchmarks and documentation.  Each entry records its source, the
verdicts the analyses are expected to produce, and (for concrete
programs) the expected final global memory under any scheduler whose
outcome is deterministic.

The catalogue doubles as an acceptance suite: ``tests/test_programs.py``
re-derives every recorded expectation from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CatalogueEntry:
    """One catalogued program with its expected analysis outcomes."""

    name: str
    source: str
    description: str
    bounded: Optional[bool] = None
    halting: Optional[bool] = None
    deterministic_memory: Optional[Dict[str, int]] = None
    lint_codes: Tuple[str, ...] = ()


FAN_OUT_SUM = CatalogueEntry(
    name="fan_out_sum",
    description="fork four adders over a shared accumulator, join, scale",
    source="""
    global acc := 0;
    program main {
        pcall adder; pcall adder; pcall adder; pcall adder;
        wait;
        acc := acc * 10;
        end;
    }
    procedure adder { acc := acc + 1; end; }
    """,
    bounded=True,
    halting=True,
    deterministic_memory={"acc": 40},
)

DIVIDE_AND_CONQUER = CatalogueEntry(
    name="divide_and_conquer",
    description="binary recursive fan-out to a fixed depth with joins",
    source="""
    global work := 0;
    global depth := 2;
    program main {
        pcall solve;
        wait;
        end;
    }
    procedure solve {
        if depth > 0 then {
            depth := depth - 1;
            pcall solve;
            pcall solve;
            wait;
        } else {
            work := work + 1;
        }
        end;
    }
    """,
    # in the ABSTRACT model the `depth > 0` test is nondeterministic, so
    # the recursion can always take the spawning branch: M_G is unbounded
    # and non-halting even though every concrete run terminates — a
    # textbook instance of the abstraction being a strict over-
    # approximation (Theorem 10 direction).
    bounded=False,
    halting=False,
    # `depth` is shared, so the fan-out narrows as siblings decrement it;
    # the concrete run is racy — no deterministic final memory recorded.
)

PRODUCER_CONSUMER = CatalogueEntry(
    name="producer_consumer",
    description="a producer fills a bounded buffer a consumer drains",
    source="""
    global buffer := 0;
    global produced := 0;
    global consumed := 0;
    program main {
        pcall producer;
        pcall consumer;
        wait;
        end;
    }
    procedure producer {
        while produced < 3 do {
            buffer := buffer + 1;
            produced := produced + 1;
        }
        end;
    }
    procedure consumer {
        while consumed < 3 do {
            if buffer > 0 then {
                buffer := buffer - 1;
                consumed := consumed + 1;
            } else {
                idle;
            }
        }
        end;
    }
    """,
    # no pcall sits inside a loop, so the invocation count is bounded (the
    # abstract state space saturates at a few dozen states) — but the
    # consumer can idle-spin forever, so the scheme does not halt
    bounded=True,
    halting=False,
    deterministic_memory={"buffer": 0, "produced": 3, "consumed": 3},
)

BARRIER_ROUNDS = CatalogueEntry(
    name="barrier_rounds",
    description="two rounds of workers separated by wait barriers",
    source="""
    global round1 := 0;
    global round2 := 0;
    program main {
        pcall w1; pcall w1;
        wait;
        pcall w2; pcall w2; pcall w2;
        wait;
        end;
    }
    procedure w1 { round1 := round1 + 1; end; }
    procedure w2 { round2 := round2 + round1; end; }
    """,
    bounded=True,
    halting=True,
    deterministic_memory={"round1": 2, "round2": 6},
)

FIRE_AND_FORGET = CatalogueEntry(
    name="fire_and_forget",
    description="spawns loggers it never joins (W006 lint)",
    source="""
    global hits := 0;
    program main {
        pcall logger;
        hits := hits + 1;
        end;
    }
    procedure logger { hits := hits + 1; end; }
    """,
    bounded=True,
    halting=True,
    deterministic_memory={"hits": 2},
    lint_codes=("W006",),
)

TOKEN_RING = CatalogueEntry(
    name="token_ring",
    description="a token circulating through a modular counter",
    source="""
    global token := 0;
    global laps := 0;
    program main {
        while laps < 2 do {
            token := (token + 1) % 3;
            if token == 0 then { laps := laps + 1; } else { pass; }
        }
        end;
    }
    """,
    bounded=True,
    halting=False,  # the abstract model can loop on the tests forever
    deterministic_memory={"token": 0, "laps": 2},
)

UNBOUNDED_SERVER = CatalogueEntry(
    name="unbounded_server",
    description="an accept loop spawning a handler per request",
    source="""
    program main {
        while request do {
            pcall handler;
        l: skip_admission;
            wait;
        }
        end;
    }
    procedure handler { handle; end; }
    """,
    bounded=True,  # the wait bounds the live handlers to one
    halting=False,
)

CATALOGUE: Tuple[CatalogueEntry, ...] = (
    FAN_OUT_SUM,
    DIVIDE_AND_CONQUER,
    PRODUCER_CONSUMER,
    BARRIER_ROUNDS,
    FIRE_AND_FORGET,
    TOKEN_RING,
    UNBOUNDED_SERVER,
)


def entry(name: str) -> CatalogueEntry:
    """Look up a catalogued program by name."""
    for candidate in CATALOGUE:
        if candidate.name == name:
            return candidate
    raise KeyError(f"unknown catalogue entry {name!r}")
